"""Hardware drift injection: perturb a profile's coefficients mid-run.

Drift is the calibration twin of the ``[[faults]]`` axis: where a fault
changes *behaviour* inside a fixed hardware model (bursts, throttles,
metering loss), drift changes the *model itself* — the contention
coefficients describing the machine stop matching reality at some point
in time, exactly the situation the continuous calibrator exists to
detect and repair.

The segmentation machinery is deliberately the faults' own: a
:class:`DriftInjector` turns its events into time-sorted boundaries, and
the measurement loop advances each engine to every boundary with
:func:`repro.platform.batch.sweep.advance_to_boundary` — the identical
``target = time + (boundary - time)`` float arithmetic both fault-aware
backends already share — then applies the new coefficients through
``set_contention_parameters``.  Both engines therefore flip parameters at
the same epoch, and a drifted vector run stays bit-exact against the
drifted scalar oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.calibrate.profile import HardwareProfile, get_param, set_param

#: Parameter namespace drift may perturb mid-run.  Machine geometry
#: (core counts, cache sizes) is baked into live engine state and cannot
#: change under a running fleet; the calibrated coefficients can.
_DRIFTABLE_PREFIX = "contention."


@dataclass(frozen=True)
class DriftEvent:
    """One step change of a model coefficient at an absolute time."""

    start_seconds: float
    #: Dot path of the coefficient that drifts (``contention.*`` only).
    path: str = "contention.memory_queueing_coefficient"
    #: Multiplier applied to the profile's nominal value at ``path``.
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.start_seconds < 0:
            raise ValueError("drift start_seconds must be >= 0")
        if not self.path.startswith(_DRIFTABLE_PREFIX):
            raise ValueError(
                f"drift path {self.path!r} is not driftable: only "
                f"'{_DRIFTABLE_PREFIX}*' coefficients can change under a "
                f"running fleet (machine geometry is fixed engine state)"
            )
        if self.scale <= 0:
            raise ValueError("drift scale must be positive")


class DriftInjector:
    """Applies a schedule of :class:`DriftEvent` to a ground-truth profile.

    Scales compose multiplicatively against the *nominal* profile in event
    order, so two events on the same path are cumulative and the profile
    at any time is a pure function of (nominal profile, events, time) —
    which is what keeps replayed measurement segments deterministic.
    """

    def __init__(self, profile: HardwareProfile, events: Tuple[DriftEvent, ...] = ()):
        self._profile = profile
        self._events = tuple(sorted(events, key=lambda e: e.start_seconds))
        for event in self._events:
            get_param(profile, event.path)  # validate paths up front

    @property
    def events(self) -> Tuple[DriftEvent, ...]:
        return self._events

    def boundaries(self, start: float, end: float) -> List[float]:
        """Drift times falling inside ``(start, end]``, time-sorted.

        The measurement loop segments its window at exactly these points,
        the way the fault windows segment a sweep horizon.
        """
        return [
            event.start_seconds
            for event in self._events
            if start < event.start_seconds <= end
        ]

    def profile_at(self, time_seconds: float) -> HardwareProfile:
        """The ground-truth profile in force at ``time_seconds``."""
        profile = self._profile
        for event in self._events:
            if event.start_seconds <= time_seconds:
                profile = set_param(
                    profile, event.path, get_param(profile, event.path) * event.scale
                )
        return profile

    def drifted(self, time_seconds: float) -> bool:
        """Whether any event has taken effect by ``time_seconds``."""
        return any(event.start_seconds <= time_seconds for event in self._events)


def no_drift(profile: HardwareProfile) -> Optional[DriftInjector]:
    """An injector with no events (stable hardware), for symmetry in tests."""
    return DriftInjector(profile, ())
