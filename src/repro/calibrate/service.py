"""Drift-aware continuous calibration: detect, search, republish.

The service closes the loop the paper leaves manual.  Litmus calibrates
its contention coefficients once, offline; real fleets drift — a BIOS
update changes prefetchers, DIMMs get swapped, thermal limits shift — and
a stale fit silently corrupts every figure built on it.  This module runs
the calibration loop continuously:

1. **Measure.**  Each round observes a fresh measurement window on the
   ground-truth hardware (:func:`repro.calibrate.measure.measure_series`
   with ``seed + round_index``, segmented at any
   :class:`repro.calibrate.drift.DriftInjector` boundaries).
2. **Predict.**  The incumbent fit replays the identical window — same
   seed, same churn draws — under its own coefficients.  On drift-free
   hardware with a correct fit the two series are bit-identical and every
   per-epoch error is exactly ``0.0``.
3. **Detect.**  Per-epoch absolute percentage errors feed a sliding
   window (``mape_window_epochs`` deep); when the windowed MAPE crosses
   ``drift_mape_threshold`` the hardware no longer matches the model.
4. **Search.**  A linspace grid over the dot-path parameter
   (``parameter``, bounds anchored at the *nominal* fit) is scored
   against a fresh probe window, each candidate replaying it under its
   own coefficients — in parallel worker processes when
   ``max_parallel_workers`` allows.  Ties break deterministically on
   ``(mape, value)``.
5. **Republish.**  The winning fit is stored atomically through the
   versioned diskcache (:mod:`repro.diskcache`), with a checkpoint-style
   self-fingerprint embedded in the payload so a tampered or
   version-skewed entry is rejected on load rather than silently reused.

Everything is a pure function of (profiles, config, drift schedule), so
two runs with the same seed republish the same fit — the property the
Hypothesis suite pins down.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro import diskcache
from repro.analysis.stats import mape
from repro.calibrate.drift import DriftInjector
from repro.calibrate.measure import MeasureConfig, measure_series
from repro.calibrate.profile import HardwareProfile, get_param, set_param
from repro.obs.metrics import CalibrationEvent
from repro.obs.trace import SpanContext, Tracer

#: Diskcache kind for published fits (entries: ``calibration-fit-<key>.json``).
PUBLISH_KIND = "calibration-fit"

Observer = Callable[[CalibrationEvent], None]


def linspace(lo: float, hi: float, points: int) -> List[float]:
    """``points`` evenly spaced values from ``lo`` to ``hi`` inclusive."""
    if points < 2:
        raise ValueError("linspace needs at least 2 points")
    if not hi > lo:
        raise ValueError(f"linspace needs hi > lo, got [{lo}, {hi}]")
    step = (hi - lo) / (points - 1)
    return [lo + index * step for index in range(points)]


@dataclass(frozen=True)
class CalibrationConfig:
    """Knobs of the continuous-calibration loop."""

    #: Dot path of the model parameter under search (``contention.*`` is
    #: the useful namespace; any numeric leaf is addressable).
    parameter: str = "contention.memory_queueing_coefficient"
    #: Grid bounds.  ``None`` anchors at the nominal fit: half to double.
    search_min: Optional[float] = None
    search_max: Optional[float] = None
    #: Grid resolution; recovery is promised to within one step.
    linspace_points: int = 9
    #: Candidate evaluations run in this many worker processes (1 = inline).
    max_parallel_workers: int = 1
    #: Sliding-window depth (epochs) of the drift detector, and the probe
    #: window length the grid search scores against.
    mape_window_epochs: int = 48
    #: Windowed MAPE above this means the incumbent no longer fits.
    drift_mape_threshold: float = 0.005
    #: Epochs each drift-check round measures.
    epochs_per_round: int = 16
    #: The measurement window's co-location experiment.
    measure: MeasureConfig = field(default_factory=MeasureConfig)

    def __post_init__(self) -> None:
        if self.linspace_points < 2:
            raise ValueError("linspace_points must be >= 2")
        if self.max_parallel_workers < 1:
            raise ValueError("max_parallel_workers must be >= 1")
        if self.mape_window_epochs < 1:
            raise ValueError("mape_window_epochs must be >= 1")
        if self.drift_mape_threshold <= 0:
            raise ValueError("drift_mape_threshold must be positive")
        if self.epochs_per_round < 1:
            raise ValueError("epochs_per_round must be >= 1")
        if (
            self.search_min is not None
            and self.search_max is not None
            and not self.search_max > self.search_min
        ):
            raise ValueError("search_max must exceed search_min")

    def grid(self, nominal: HardwareProfile) -> List[float]:
        """The candidate values, anchored at ``nominal``'s fitted value.

        Anchoring at the nominal profile (not the evolving incumbent)
        keeps the grid — and the published fit's cache key — stable
        across rounds.
        """
        center = get_param(nominal, self.parameter)
        lo = self.search_min if self.search_min is not None else 0.5 * center
        hi = self.search_max if self.search_max is not None else 2.0 * center
        return linspace(lo, hi, self.linspace_points)


# --------------------------------------------------------------------- #
# Candidate evaluation (top-level so worker processes can pickle it)
# --------------------------------------------------------------------- #
def _score_candidate(
    task: Tuple[HardwareProfile, str, float, MeasureConfig, int, List[float]],
) -> float:
    profile, parameter, value, measure_config, epochs, truth = task
    candidate = set_param(profile, parameter, value)
    series = measure_series(candidate, measure_config, epochs)
    return mape(series, truth)


@dataclass(frozen=True)
class CandidateScore:
    value: float
    mape: float


def grid_search(
    nominal: HardwareProfile,
    config: CalibrationConfig,
    truth: List[float],
    *,
    measure_config: Optional[MeasureConfig] = None,
    round_index: int = 0,
    observer: Optional[Observer] = None,
) -> List[CandidateScore]:
    """Score every grid candidate's replay of ``truth``'s window.

    Results come back in grid order regardless of worker scheduling, so
    the argmin — tie-broken on ``(mape, value)`` — is deterministic for a
    fixed seed whatever ``max_parallel_workers`` is.
    """
    measure_config = measure_config or config.measure
    epochs = len(truth)
    values = config.grid(nominal)
    tasks = [
        (nominal, config.parameter, value, measure_config, epochs, truth)
        for value in values
    ]
    if config.max_parallel_workers > 1:
        workers = min(config.max_parallel_workers, len(tasks))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            errors = list(pool.map(_score_candidate, tasks))
    else:
        errors = [_score_candidate(task) for task in tasks]
    scores = [CandidateScore(value=v, mape=e) for v, e in zip(values, errors)]
    if observer is not None:
        for index, score in enumerate(scores):
            observer(
                CalibrationEvent(
                    kind="candidate",
                    round_index=round_index,
                    parameter=config.parameter,
                    value=score.value,
                    mape=score.mape,
                    candidate_index=index,
                    candidates_total=len(scores),
                )
            )
    return scores


def best_candidate(scores: List[CandidateScore]) -> CandidateScore:
    """Deterministic argmin: lowest MAPE, lowest value on exact ties."""
    return min(scores, key=lambda score: (score.mape, score.value))


# --------------------------------------------------------------------- #
# Atomic republish through the versioned diskcache
# --------------------------------------------------------------------- #
def fit_key(nominal: HardwareProfile, config: CalibrationConfig) -> str:
    """Cache key of the fit *slot*: profile identity + search shape.

    The key never includes the fitted value — republishing overwrites the
    slot in place (atomically, via the diskcache's temp-file +
    ``os.replace`` discipline), which is what makes the newest fit the
    only one consumers can observe.
    """
    return diskcache.fingerprint(
        PUBLISH_KIND,
        nominal.name,
        nominal.machine,
        nominal.contention,
        config.parameter,
        config.grid(nominal),
        config.measure,
        config.mape_window_epochs,
    )


def _fit_guard(key: str, body: Dict[str, Any]) -> str:
    return diskcache.fingerprint(PUBLISH_KIND, key, body)


def publish_fit(
    nominal: HardwareProfile,
    config: CalibrationConfig,
    *,
    value: float,
    fit_mape: float,
    round_index: int,
) -> Tuple[str, Dict[str, Any], Optional[Path]]:
    """Atomically publish a fit; returns ``(key, payload, path)``.

    The payload embeds a fingerprint over its own body — the stream
    checkpoints' staleness guard — so :func:`load_fit` can reject a
    hand-edited or half-migrated entry instead of silently reusing it.
    ``path`` is ``None`` when the diskcache is disabled.
    """
    key = fit_key(nominal, config)
    body: Dict[str, Any] = {
        "profile": nominal.name,
        "machine": nominal.machine.name,
        "parameter": config.parameter,
        "value": value,
        "mape": fit_mape,
        "round_index": round_index,
        "nominal_value": get_param(nominal, config.parameter),
    }
    payload = dict(body, fingerprint=_fit_guard(key, body))
    path = diskcache.store(PUBLISH_KIND, key, payload)
    return key, payload, path


def load_fit(
    nominal: HardwareProfile, config: CalibrationConfig
) -> Optional[Dict[str, Any]]:
    """The published fit for this slot, or ``None`` if absent or unsound.

    Unsound means the embedded fingerprint does not match the payload
    body — a tampered, truncated or schema-drifted entry — or the
    diskcache rejected it outright (version skew).  Either way the caller
    recalibrates instead of trusting it.
    """
    key = fit_key(nominal, config)
    payload = diskcache.load(PUBLISH_KIND, key)
    if payload is None:
        return None
    body = {k: v for k, v in payload.items() if k != "fingerprint"}
    if payload.get("fingerprint") != _fit_guard(key, body):
        return None
    return payload


def fitted_profile(
    nominal: HardwareProfile, config: CalibrationConfig
) -> HardwareProfile:
    """``nominal`` with the published fit applied (nominal when none)."""
    fit = load_fit(nominal, config)
    if fit is None:
        return nominal
    return set_param(nominal, config.parameter, float(fit["value"]))


# --------------------------------------------------------------------- #
# The continuous loop
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class RoundResult:
    """What one drift-check round concluded."""

    round_index: int
    #: Windowed MAPE of the incumbent over the sliding APE window.
    windowed_mape: float
    drift_detected: bool
    #: Grid scores when a search ran this round (drift was detected).
    scores: Tuple[CandidateScore, ...] = ()
    #: The republished fit, when a search ran.
    best: Optional[CandidateScore] = None
    fit_fingerprint: str = ""
    #: Incumbent parameter value *after* the round.
    incumbent_value: float = 0.0
    #: Whether the incumbent's windowed MAPE is back under threshold.
    converged: bool = True
    #: The round's measured ground-truth window (per-epoch values) — the
    #: raw series behind ``windowed_mape``; observability consumers turn
    #: it into ``repro.obs.series`` points.
    measured: Tuple[float, ...] = ()


class ContinuousCalibrator:
    """Measure → predict → detect → search → republish, round after round.

    ``truth`` is the ground-truth hardware (what the scalar engine
    simulates as "reality"); ``incumbent`` is the model's current fit,
    defaulting to ``truth``'s own nominal coefficients.  A
    :class:`DriftInjector` over the truth profile perturbs reality
    mid-run; the calibrator only ever observes the measured series.
    """

    def __init__(
        self,
        truth: HardwareProfile,
        config: CalibrationConfig,
        *,
        incumbent: Optional[HardwareProfile] = None,
        drift: Optional[DriftInjector] = None,
        observer: Optional[Observer] = None,
        tracer: Optional[Tracer] = None,
        trace_parent: Optional[SpanContext] = None,
    ) -> None:
        if incumbent is not None and incumbent.machine != truth.machine:
            raise ValueError(
                "incumbent and truth profiles must share a machine topology"
            )
        self._truth = truth
        self._config = config
        self._incumbent = incumbent or truth
        self._nominal = self._incumbent
        self._drift = drift
        self._observer = observer
        #: Optional span tracing (repro.obs.trace); strictly read-only —
        #: spans observe the round's timings, never its arithmetic.
        self._tracer = tracer
        self._trace_parent = trace_parent
        self._apes: Deque[float] = deque(maxlen=config.mape_window_epochs)
        self._round = 0
        self._clock = 0.0

    @property
    def incumbent(self) -> HardwareProfile:
        return self._incumbent

    @property
    def rounds_run(self) -> int:
        return self._round

    def _emit(self, event: CalibrationEvent) -> None:
        if self._observer is not None:
            self._observer(event)

    def _advance(self, epochs: int) -> None:
        self._clock += epochs * self._config.measure.epoch_seconds

    def run_round(self) -> RoundResult:
        """One drift-check round; searches and republishes only on drift.

        With a tracer attached, the round emits one ``phase=round`` span
        with ``measure`` / ``search`` children — the calibration limb of
        the run's trace tree.
        """
        if self._tracer is None:
            return self._run_round_inner()
        with self._tracer.span(
            f"round-{self._round}",
            parent=self._trace_parent,
            tags={"phase": "round"},
        ) as span:
            result = self._run_round_inner()
            span.tags.update(
                drift_detected=result.drift_detected,
                windowed_mape=result.windowed_mape,
            )
            return result

    def _run_round_inner(self) -> RoundResult:
        config = self._config
        round_index = self._round
        self._round += 1
        measure_config = dataclasses.replace(
            config.measure, seed=config.measure.seed + round_index
        )

        measure_span = (
            None
            if self._tracer is None
            else self._tracer.start("measure", tags={"phase": "measure"})
        )
        measured = measure_series(
            self._truth,
            measure_config,
            config.epochs_per_round,
            start_seconds=self._clock,
            drift=self._drift,
        )
        predicted = measure_series(
            self._incumbent, measure_config, config.epochs_per_round
        )
        if measure_span is not None:
            measure_span.tags["epochs"] = config.epochs_per_round
            self._tracer.finish(measure_span)
        self._advance(config.epochs_per_round)
        for guess, actual in zip(predicted, measured):
            self._apes.append(abs(guess - actual) / max(abs(actual), 1e-12))
        windowed = sum(self._apes) / len(self._apes)
        detected = windowed > config.drift_mape_threshold
        self._emit(
            CalibrationEvent(
                kind="round",
                round_index=round_index,
                parameter=config.parameter,
                value=get_param(self._incumbent, config.parameter),
                mape=windowed,
                threshold=config.drift_mape_threshold,
                drift_detected=detected,
            )
        )
        if not detected:
            return RoundResult(
                round_index=round_index,
                windowed_mape=windowed,
                drift_detected=False,
                incumbent_value=get_param(self._incumbent, config.parameter),
                converged=True,
                measured=tuple(measured),
            )

        # Drift: probe a full window of current reality and fit the grid
        # against it.  The probe is a fresh controlled experiment, so it
        # advances the drift clock like any other measurement.
        search_span = (
            None
            if self._tracer is None
            else self._tracer.start("search", tags={"phase": "search"})
        )
        probe = measure_series(
            self._truth,
            measure_config,
            config.mape_window_epochs,
            start_seconds=self._clock,
            drift=self._drift,
        )
        self._advance(config.mape_window_epochs)
        scores = grid_search(
            self._nominal,
            config,
            probe,
            measure_config=measure_config,
            round_index=round_index,
            observer=self._observer,
        )
        if search_span is not None:
            search_span.tags["candidates"] = len(scores)
            self._tracer.finish(search_span)
        best = best_candidate(scores)
        self._incumbent = set_param(self._nominal, config.parameter, best.value)
        _, payload, _ = publish_fit(
            self._nominal,
            config,
            value=best.value,
            fit_mape=best.mape,
            round_index=round_index,
        )
        self._apes.clear()
        self._emit(
            CalibrationEvent(
                kind="republish",
                round_index=round_index,
                parameter=config.parameter,
                value=best.value,
                mape=best.mape,
                threshold=config.drift_mape_threshold,
                fingerprint=payload["fingerprint"],
            )
        )
        return RoundResult(
            round_index=round_index,
            windowed_mape=windowed,
            drift_detected=True,
            scores=tuple(scores),
            best=best,
            fit_fingerprint=payload["fingerprint"],
            incumbent_value=best.value,
            converged=best.mape <= config.drift_mape_threshold,
            measured=tuple(measured),
        )

    def run(self, rounds: int) -> List[RoundResult]:
        """Run ``rounds`` drift-check rounds (the ``--watch`` loop body)."""
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        return [self.run_round() for _ in range(rounds)]


def calibrate_once(
    truth: HardwareProfile,
    config: CalibrationConfig,
    *,
    incumbent: Optional[HardwareProfile] = None,
    observer: Optional[Observer] = None,
    tracer: Optional[Tracer] = None,
    trace_parent: Optional[SpanContext] = None,
) -> RoundResult:
    """Single-shot calibration: search now, republish, report convergence.

    The ``--once`` smoke path: no drift detection gate — the caller
    already believes the incumbent is stale (typically because the truth
    profile was deliberately perturbed) and wants the best fit the grid
    can produce, plus a verdict on whether it lands under threshold.
    """
    nominal = incumbent or truth
    if nominal.machine != truth.machine:
        raise ValueError("incumbent and truth profiles must share a machine topology")
    round_span = (
        None
        if tracer is None
        else tracer.start("round-0", parent=trace_parent, tags={"phase": "round"})
    )
    measure_span = (
        None if tracer is None else tracer.start("measure", tags={"phase": "measure"})
    )
    probe = measure_series(truth, config.measure, config.mape_window_epochs)
    if measure_span is not None:
        measure_span.tags["epochs"] = config.mape_window_epochs
        tracer.finish(measure_span)
    search_span = (
        None if tracer is None else tracer.start("search", tags={"phase": "search"})
    )
    scores = grid_search(
        nominal,
        config,
        probe,
        observer=observer,
    )
    best = best_candidate(scores)
    if search_span is not None:
        search_span.tags["candidates"] = len(scores)
        tracer.finish(search_span)
    _, payload, _ = publish_fit(
        nominal,
        config,
        value=best.value,
        fit_mape=best.mape,
        round_index=0,
    )
    if observer is not None:
        observer(
            CalibrationEvent(
                kind="republish",
                round_index=0,
                parameter=config.parameter,
                value=best.value,
                mape=best.mape,
                threshold=config.drift_mape_threshold,
                fingerprint=payload["fingerprint"],
            )
        )
    if round_span is not None:
        tracer.finish(round_span)
    return RoundResult(
        round_index=0,
        windowed_mape=best.mape,
        drift_detected=True,
        scores=tuple(scores),
        best=best,
        fit_fingerprint=payload["fingerprint"],
        incumbent_value=best.value,
        converged=best.mape <= config.drift_mape_threshold,
        measured=tuple(probe),
    )
