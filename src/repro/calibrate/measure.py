"""The "measured" utilization stream the calibrator fits against.

One measurement window is a steady-churn co-location experiment on a
single machine — the same submission/resubmission idiom as
:class:`repro.platform.batch.FleetSweep`, per-machine mixer seeded the
same way — observed epoch-by-epoch: each epoch contributes the machine's
cumulative shared-stall fraction (stall cycles on shared-resource misses
over total cycles, totals since the window began).  That is the paper's
``T_shared`` share of execution — the one component the contention model
actually produces — so a wrong coefficient moves every reading instead
of being diluted by the private-execution baseline, and the cumulative
totals smooth churn phase noise that decorrelates per-epoch deltas.

Ground truth is the scalar :class:`repro.platform.engine.SimulationEngine`
(the repo's correctness oracle throughout); candidate fits replay the
identical window — same seed, same churn draws, same epoch count — under
their own coefficients, so a candidate matching the truth parameters
reproduces the measured series *bit for bit* and scores an exact 0 MAPE.
Mid-window hardware drift segments the window at each
:class:`repro.calibrate.drift.DriftEvent` boundary with the fault
machinery's :func:`repro.platform.batch.sweep.advance_to_boundary`
arithmetic, so the vector and scalar backends apply the drifted
coefficients at the same epoch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.calibrate.drift import DriftInjector
from repro.calibrate.profile import HardwareProfile
from repro.hardware.cpu import CPU
from repro.platform.batch.sweep import advance_to_boundary, resolve_mix
from repro.platform.batch.vector_engine import VectorEngine, VectorEngineConfig
from repro.platform.engine import EngineConfig, SimulationEngine
from repro.platform.scheduler import LeastOccupancyScheduler
from repro.workloads.registry import FunctionRegistry, default_registry
from repro.workloads.synthetic import WorkloadMixer

MEASURE_BACKENDS = ("scalar", "vector")


@dataclass(frozen=True)
class MeasureConfig:
    """Shape of one measurement window's co-location experiment."""

    #: Cores hosting functions (must not exceed the profile machine's cores).
    cores: int = 4
    #: Functions co-located per core.  The default leans heavy on purpose:
    #: more contention means the shared-stall signal responds more sharply
    #: to the coefficient under search.
    colocation: int = 4
    #: Traffic mix: ``all``, ``memory-intensive`` or ``abbr+abbr`` lists.
    mix: str = "memory-intensive"
    seed: int = 2024
    epoch_seconds: float = 1e-3
    #: Function-body scale (same fidelity/wall-clock dial as sweeps).
    registry_scale: float = 0.05

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if self.colocation < 1:
            raise ValueError("colocation must be >= 1")
        if self.epoch_seconds <= 0:
            raise ValueError("epoch_seconds must be positive")
        if self.registry_scale <= 0:
            raise ValueError("registry_scale must be positive")


def _registry_for(config: MeasureConfig) -> FunctionRegistry:
    base = default_registry()
    return base if config.registry_scale == 1.0 else base.scaled(config.registry_scale)


def measure_series(
    profile: HardwareProfile,
    config: MeasureConfig,
    epochs: int,
    *,
    backend: str = "scalar",
    start_seconds: float = 0.0,
    drift: Optional[DriftInjector] = None,
    registry: Optional[FunctionRegistry] = None,
) -> List[float]:
    """Per-epoch cumulative shared-stall fraction over one measurement window.

    ``start_seconds`` places the window on the drift injector's absolute
    clock (the engine itself always starts cold at 0 — a window is a fresh
    controlled experiment, the way Litmus calibration runs are).  With no
    drift the series is a pure function of (profile, config, epochs,
    seed); both backends step the identical epochs and segment at the
    identical boundaries.
    """
    if backend not in MEASURE_BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {MEASURE_BACKENDS}"
        )
    if epochs < 1:
        raise ValueError("epochs must be >= 1")
    machine = profile.machine
    if config.cores > machine.cores:
        raise ValueError(
            f"measure config wants {config.cores} cores but "
            f"{machine.name} has {machine.cores}"
        )
    registry = registry or _registry_for(config)
    pool = resolve_mix(config.mix, registry)
    mixer = WorkloadMixer(pool, seed=config.seed)
    window_seconds = epochs * config.epoch_seconds
    parameters = (
        drift.profile_at(start_seconds) if drift is not None else profile
    ).contention

    series: List[float] = []
    fleet = config.cores * config.colocation

    if backend == "vector":
        engine = VectorEngine(
            machine,
            machines=1,
            config=VectorEngineConfig(epoch_seconds=config.epoch_seconds),
            contention_parameters=parameters,
            materialize_handles=False,
            initial_capacity=max(4 * fleet, 1024),
        )
        for thread in range(config.cores):
            for _ in range(config.colocation):
                engine.submit(mixer.next(), machine=0, thread_id=thread)

        def on_finish(index: object, eng: VectorEngine) -> None:
            thread = int(eng.gthread[index])
            eng.submit(mixer.next(), machine=0, thread_id=thread)

        engine.add_finish_listener(on_finish)

        def read_counters():
            snapshot = engine.machine_counters(0)
            return snapshot.cycles, snapshot.stall_cycles_l2_miss

    else:
        engine = SimulationEngine(
            CPU(machine, contention_parameters=parameters),
            LeastOccupancyScheduler(),
            config=EngineConfig(
                epoch_seconds=config.epoch_seconds, record_events=False
            ),
        )
        for thread in range(config.cores):
            for _ in range(config.colocation):
                engine.submit(mixer.next(), thread_id=thread)

        def on_finish(invocation, eng) -> None:
            eng.submit(mixer.next(), thread_id=invocation.thread_id)

        engine.add_finish_listener(on_finish)

        def read_counters():
            counters = engine.cpu.global_counters
            return counters.cycles, counters.stall_cycles_l2_miss

    def record() -> None:
        cycles, stall = read_counters()
        series.append(stall / cycles if cycles > 0 else 0.0)

    boundaries = (
        drift.boundaries(start_seconds, start_seconds + window_seconds)
        if drift is not None
        else []
    )
    for when in boundaries:
        advance_to_boundary(engine, when - start_seconds, on_epoch=record)
        engine.set_contention_parameters(drift.profile_at(when).contention)
    advance_to_boundary(engine, window_seconds, on_epoch=record)
    return series
