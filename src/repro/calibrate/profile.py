"""Hardware profiles: the unit the continuous calibrator fits.

A :class:`HardwareProfile` bundles a machine topology
(:class:`repro.hardware.topology.MachineSpec`) with the contention-model
coefficients (:class:`repro.hardware.contention.ContentionParameters`)
calibrated for it.  Every numeric leaf of that bundle is addressable by a
dot path — ``contention.memory_queueing_coefficient``,
``machine.l3.size_kb`` — which is how the grid search of
:mod:`repro.calibrate.service` names the parameter it sweeps and how
:class:`repro.calibrate.drift.DriftInjector` names the one it perturbs.

Profiles are data, not code: alternate platforms ship as TOML files under
``repro/calibrate/profiles/`` (``sg2042-like``, ``icelake-like`` — the
RISC-V and Ice Lake characterizations the paper's Figure 19 sensitivity
study points at), loaded with the same path-qualified validation style as
scenario specs.  ``profile_by_name`` resolves shipped files and the two
built-in testbed machines alike.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.hardware.contention import ContentionParameters
from repro.hardware.topology import (
    CASCADE_LAKE_5218,
    ICE_LAKE_4314,
    CacheSpec,
    MachineSpec,
)

#: Directory the shipped profile data files live in (package data).
PROFILE_DIR = Path(__file__).resolve().parent / "profiles"


class ProfileError(ValueError):
    """A malformed profile file or an unknown parameter path."""


@dataclass(frozen=True)
class HardwareProfile:
    """One platform the model can be calibrated for."""

    name: str
    machine: MachineSpec
    contention: ContentionParameters = field(default_factory=ContentionParameters)
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ProfileError("profile name must not be empty")


def default_profile() -> HardwareProfile:
    """The paper's primary testbed with the as-shipped model coefficients."""
    return HardwareProfile(
        name="cascade-lake-5218",
        machine=CASCADE_LAKE_5218,
        contention=ContentionParameters(),
        description="Xeon Gold 5218 testbed (paper Section 7.1), default fit.",
    )


# --------------------------------------------------------------------- #
# Dot-path parameter addressing
# --------------------------------------------------------------------- #
def _is_numeric(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def numeric_paths(root: Any, prefix: str = "") -> List[str]:
    """Every dot path addressing a numeric leaf field of ``root``.

    Nested dataclasses recurse (``machine.l3.latency_cycles``); strings,
    bools and other non-numeric leaves are skipped — they are identity,
    not calibratable quantities.
    """
    paths: List[str] = []
    for f in dataclasses.fields(root):
        value = getattr(root, f.name)
        key = f"{prefix}{f.name}"
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            paths.extend(numeric_paths(value, prefix=f"{key}."))
        elif _is_numeric(value):
            paths.append(key)
    return paths


def _walk(root: Any, path: str) -> Any:
    node = root
    for part in path.split("."):
        if not (dataclasses.is_dataclass(node) and not isinstance(node, type)):
            raise ProfileError(
                f"unknown parameter path {path!r}: {part!r} is not a field; "
                f"valid paths: {', '.join(numeric_paths(root))}"
            )
        names = {f.name for f in dataclasses.fields(node)}
        if part not in names:
            raise ProfileError(
                f"unknown parameter path {path!r}: no field {part!r}; "
                f"valid paths: {', '.join(numeric_paths(root))}"
            )
        node = getattr(node, part)
    return node


def get_param(profile: HardwareProfile, path: str) -> float:
    """Read the numeric parameter at ``path`` (e.g. ``contention.max_utilization``)."""
    value = _walk(profile, path)
    if not _is_numeric(value):
        raise ProfileError(
            f"parameter path {path!r} does not address a numeric leaf; "
            f"valid paths: {', '.join(numeric_paths(profile))}"
        )
    return value


def _replace_at(node: Any, parts: List[str], value: float) -> Any:
    name = parts[0]
    if len(parts) == 1:
        current = getattr(node, name)
        if isinstance(current, int) and not isinstance(current, bool):
            value = int(round(value))
        return dataclasses.replace(node, **{name: value})
    child = getattr(node, name)
    return dataclasses.replace(node, **{name: _replace_at(child, parts[1:], value)})


def set_param(profile: HardwareProfile, path: str, value: float) -> HardwareProfile:
    """A new profile with the parameter at ``path`` replaced by ``value``.

    Profiles are frozen all the way down, so this rebuilds the spine of
    dataclasses along the path (integer leaves are rounded to stay valid).
    The original profile is untouched — candidate evaluation in parallel
    workers depends on that.
    """
    get_param(profile, path)  # validates the path addresses a numeric leaf
    return _replace_at(profile, path.split("."), value)


def perturbed(profile: HardwareProfile, path: str, scale: float) -> HardwareProfile:
    """The profile with the parameter at ``path`` multiplied by ``scale``.

    The standard way to fabricate "drifted hardware" for smoke tests:
    the perturbed profile plays ground truth while the nominal one is the
    stale incumbent fit the calibrator must notice is wrong.
    """
    return set_param(profile, path, get_param(profile, path) * scale)


# --------------------------------------------------------------------- #
# TOML profile files
# --------------------------------------------------------------------- #
_MACHINE_SCALARS = (
    ("name", str),
    ("architecture", str),
    ("cores", int),
    ("smt_ways", int),
    ("base_frequency_ghz", float),
    ("max_turbo_frequency_ghz", float),
    ("memory_gb", float),
    ("memory_latency_ns", float),
    ("memory_bandwidth_gbs", float),
    ("ring_peak_accesses_per_us", float),
)

_MACHINE_OPTIONAL = (
    ("line_size_bytes", int),
    ("smt_private_penalty", float),
    ("context_switch_cost_us", float),
)


def _require(table: Dict[str, Any], key: str, kind: type, where: str) -> Any:
    if key not in table:
        raise ProfileError(f"{where}: missing required key {key!r}")
    value = table[key]
    if kind is float and isinstance(value, int) and not isinstance(value, bool):
        value = float(value)
    if not isinstance(value, kind) or isinstance(value, bool):
        raise ProfileError(
            f"{where}.{key}: expected {kind.__name__}, got {type(value).__name__}"
        )
    return value


def _cache_spec(table: Any, level: str, where: str) -> CacheSpec:
    if not isinstance(table, dict):
        raise ProfileError(f"{where}: expected a [{where}] table")
    return CacheSpec(
        level=level,
        size_kb=_require(table, "size_kb", float, where),
        latency_cycles=_require(table, "latency_cycles", float, where),
        shared=level == "L3",
    )


def load_profile(path: Path) -> HardwareProfile:
    """Parse and validate one profile TOML file.

    Errors are path-qualified (``machine.l3.size_kb: ...``) in the style
    of scenario-spec validation, so a typo in a data file names itself.
    """
    import tomllib

    path = Path(path)
    try:
        document = tomllib.loads(path.read_text(encoding="utf-8"))
    except OSError as error:
        raise ProfileError(f"cannot read profile {path}: {error}") from None
    except tomllib.TOMLDecodeError as error:
        raise ProfileError(f"profile {path} is not valid TOML: {error}") from None

    name = _require(document, "name", str, path.stem)
    description = document.get("description", "")
    if not isinstance(description, str):
        raise ProfileError(f"{name}.description: expected a string")

    machine_table = document.get("machine")
    if not isinstance(machine_table, dict):
        raise ProfileError(f"{name}: missing required [machine] table")
    kwargs: Dict[str, Any] = {}
    for key, kind in _MACHINE_SCALARS:
        kwargs[key] = _require(machine_table, key, kind, f"{name}.machine")
    for key, kind in _MACHINE_OPTIONAL:
        if key in machine_table:
            kwargs[key] = _require(machine_table, key, kind, f"{name}.machine")
    for level, table_key in (("L1D", "l1d"), ("L2", "l2"), ("L3", "l3")):
        kwargs[table_key] = _cache_spec(
            machine_table.get(table_key), level, f"{name}.machine.{table_key}"
        )
    known = {key for key, _ in _MACHINE_SCALARS + _MACHINE_OPTIONAL} | {
        "l1d", "l2", "l3"
    }
    for key in machine_table:
        if key not in known:
            raise ProfileError(
                f"{name}.machine: unknown key {key!r}; known keys: "
                f"{', '.join(sorted(known))}"
            )
    try:
        machine = MachineSpec(**kwargs)
    except ValueError as error:
        raise ProfileError(f"{name}.machine: {error}") from None

    contention_table = document.get("contention", {})
    if not isinstance(contention_table, dict):
        raise ProfileError(f"{name}: [contention] must be a table")
    contention_fields = {f.name for f in dataclasses.fields(ContentionParameters)}
    contention_kwargs: Dict[str, float] = {}
    for key, value in contention_table.items():
        if key not in contention_fields:
            raise ProfileError(
                f"{name}.contention: unknown key {key!r}; known keys: "
                f"{', '.join(sorted(contention_fields))}"
            )
        contention_kwargs[key] = _require(
            contention_table, key, float, f"{name}.contention"
        )

    known_top = {"name", "description", "machine", "contention"}
    for key in document:
        if key not in known_top:
            raise ProfileError(
                f"{name}: unknown top-level key {key!r}; known keys: "
                f"{', '.join(sorted(known_top))}"
            )

    return HardwareProfile(
        name=name,
        machine=machine,
        contention=ContentionParameters(**contention_kwargs),
        description=description,
    )


def _builtin_profiles() -> Dict[str, HardwareProfile]:
    return {
        "cascade-lake-5218": default_profile(),
        "ice-lake-4314": HardwareProfile(
            name="ice-lake-4314",
            machine=ICE_LAKE_4314,
            contention=ContentionParameters(),
            description="Xeon Silver 4314 sensitivity machine (Figure 19).",
        ),
    }


def list_profiles() -> List[str]:
    """Names of every resolvable profile: built-ins plus shipped data files."""
    names = set(_builtin_profiles())
    if PROFILE_DIR.is_dir():
        names.update(p.stem for p in PROFILE_DIR.glob("*.toml"))
    return sorted(names)


def profile_by_name(name: str) -> HardwareProfile:
    """Resolve a profile by name, shipped file stem, or explicit file path."""
    as_path = Path(name)
    if as_path.suffix == ".toml" and as_path.exists():
        return load_profile(as_path)
    builtins = _builtin_profiles()
    if name in builtins:
        return builtins[name]
    shipped = PROFILE_DIR / f"{name}.toml"
    if shipped.exists():
        return load_profile(shipped)
    raise ProfileError(
        f"unknown profile {name!r}; known profiles: {', '.join(list_profiles())}"
    )
