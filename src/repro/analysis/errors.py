"""Price-error metrics (the paper's Figure 12).

The paper reports, per test function, the *weighted* error of each pricing
component: the error of ``P_private`` (relative to the ideal component
price) weighted by the share of ``T_private`` in the execution, likewise for
``P_shared``, plus the error of the total price.  A positive error means the
tenant was under-compensated (the Litmus price exceeds the ideal price); a
negative error means over-compensation.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PriceErrorBreakdown:
    """Signed error of one function's Litmus price against its ideal price."""

    function: str
    private_error: float
    shared_error: float
    total_error: float

    @property
    def absolute_total_error(self) -> float:
        return abs(self.total_error)


def price_error_breakdown(
    *,
    function: str,
    litmus_private: float,
    litmus_shared: float,
    ideal_private: float,
    ideal_shared: float,
) -> PriceErrorBreakdown:
    """Compute the weighted component errors of Figure 12.

    ``litmus_*`` and ``ideal_*`` are the component prices (same currency
    units).  The component errors are weighted by the ideal component's
    share of the ideal total so that an error on a tiny component cannot
    dominate the breakdown.
    """
    ideal_total = ideal_private + ideal_shared
    if ideal_total <= 0:
        raise ValueError("ideal price must be positive")
    litmus_total = litmus_private + litmus_shared

    private_weight = ideal_private / ideal_total
    shared_weight = ideal_shared / ideal_total

    private_error = 0.0
    if ideal_private > 0:
        private_error = (litmus_private - ideal_private) / ideal_private * private_weight
    shared_error = 0.0
    if ideal_shared > 0:
        shared_error = (litmus_shared - ideal_shared) / ideal_shared * shared_weight
    total_error = (litmus_total - ideal_total) / ideal_total

    return PriceErrorBreakdown(
        function=function,
        private_error=private_error,
        shared_error=shared_error,
        total_error=total_error,
    )
