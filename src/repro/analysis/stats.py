"""Small statistics helpers shared by calibration, pricing and experiments.

The paper reports most aggregates as geometric means (slowdowns, normalized
prices), so that is the default aggregator throughout the reproduction.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of strictly positive values.

    Raises :class:`ValueError` on an empty input or non-positive values —
    silently returning 0 or skipping entries would hide calibration bugs.
    """
    values = list(values)
    if not values:
        raise ValueError("geometric_mean of an empty sequence is undefined")
    total = 0.0
    for value in values:
        if value <= 0:
            raise ValueError(f"geometric_mean requires positive values, got {value}")
        total += math.log(value)
    return math.exp(total / len(values))


def weighted_mean(values: Sequence[float], weights: Sequence[float]) -> float:
    """Arithmetic mean of ``values`` weighted by ``weights``."""
    if len(values) != len(weights):
        raise ValueError("values and weights must have the same length")
    if not values:
        raise ValueError("weighted_mean of an empty sequence is undefined")
    total_weight = float(sum(weights))
    if total_weight <= 0:
        raise ValueError("weights must sum to a positive value")
    return sum(v * w for v, w in zip(values, weights)) / total_weight


def mape(predicted: Sequence[float], actual: Sequence[float]) -> float:
    """Mean absolute percentage error of ``predicted`` against ``actual``.

    The calibration score (see :mod:`repro.calibrate`): each element
    contributes ``|predicted - actual| / max(|actual|, 1e-12)`` — the
    denominator floor keeps an exact-zero observation from blowing the
    mean up to infinity while still punishing any disagreement about it.
    An identical pair of series scores exactly 0.0.
    """
    if len(predicted) != len(actual):
        raise ValueError(
            f"mape needs series of equal length, got {len(predicted)} vs {len(actual)}"
        )
    if not actual:
        raise ValueError("mape of empty series is undefined")
    total = 0.0
    for guess, truth in zip(predicted, actual):
        total += abs(guess - truth) / max(abs(truth), 1e-12)
    return total / len(actual)


def safe_ratio(numerator: float, denominator: float, default: float = 0.0) -> float:
    """``numerator / denominator`` with an explicit value for a zero denominator."""
    if denominator == 0:
        return default
    return numerator / denominator


def normalize(values: Sequence[float], baseline: float) -> list[float]:
    """Divide every value by ``baseline`` (which must be non-zero)."""
    if baseline == 0:
        raise ValueError("cannot normalize by a zero baseline")
    return [value / baseline for value in values]
