"""Statistics, error metrics and plain-text reporting helpers."""

from repro.analysis.stats import (
    geometric_mean,
    normalize,
    safe_ratio,
    weighted_mean,
)
from repro.analysis.errors import PriceErrorBreakdown, price_error_breakdown
from repro.analysis.reporting import format_table, format_series

__all__ = [
    "geometric_mean",
    "normalize",
    "safe_ratio",
    "weighted_mean",
    "PriceErrorBreakdown",
    "price_error_breakdown",
    "format_table",
    "format_series",
]
