"""Plain-text rendering of experiment results.

Every experiment module returns structured rows; these helpers render them
as aligned text tables so the benchmark harness can print the same rows and
series the paper's figures show.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str],
    title: str | None = None,
    float_format: str = "{:.4f}",
) -> str:
    """Render ``rows`` (dicts) as an aligned text table with ``columns``."""
    if not columns:
        raise ValueError("at least one column is required")

    def render(value: object) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    header = list(columns)
    body = [[render(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(header[i]), *(len(line[i]) for line in body)) if body else len(header[i])
        for i in range(len(columns))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header[i].ljust(widths[i]) for i in range(len(columns))))
    lines.append("  ".join("-" * widths[i] for i in range(len(columns))))
    for line in body:
        lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Sequence[float]],
    x_label: str,
    x_values: Sequence[object],
    title: str | None = None,
    float_format: str = "{:.4f}",
) -> str:
    """Render one or more named series sharing the same x axis."""
    rows = []
    for index, x in enumerate(x_values):
        row: dict[str, object] = {x_label: x}
        for name, values in series.items():
            if index < len(values):
                row[name] = values[index]
        rows.append(row)
    return format_table(rows, [x_label, *series.keys()], title=title, float_format=float_format)
