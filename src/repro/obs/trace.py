"""Span tracing: one coherent timing tree per run, across processes.

A long run — a sharded fleet sweep, a streaming replay, a continuous
calibration watch — used to be a black box between its first and last
print.  This module is the timing skeleton: a :class:`Tracer` opens
:class:`TraceSpan` records (trace/span/parent IDs, wall-clock start,
duration, a small tag dict) around the phases of a run, and every span
lands in the same versioned JSONL stream as the metrics snapshots
(see :mod:`repro.obs.envelope`), so ``python -m repro obs summarize``
and ``obs export-trace`` can reconstruct where the time went.

Cross-process propagation is deliberately primitive: a
:class:`SpanContext` is two strings — the trace ID and the parent span
ID — and pickles into shard jobs (:mod:`repro.platform.batch.shard`)
or figure jobs.  A worker builds its own :class:`Tracer` around the
inherited trace ID, parents its spans on the inherited span ID, and
pushes finished spans onto the same metrics queue the snapshots ride;
the parent's collector files everything into one tree.

Tracing is strictly read-only — it observes wall-clock and counters the
run already maintains, never simulation state — and self-accounts: every
tracer totals the wall-clock its own bookkeeping consumed, and a root
span closed with ``root=True`` stamps ``obs_overhead_seconds`` /
``obs_overhead_fraction`` tags so the <5% overhead budget is checked by
the run itself (and recorded into BENCH_engine.json run extras).
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Union

__all__ = ["SpanContext", "TraceSpan", "Tracer"]


def _new_id() -> str:
    """A fresh 64-bit hex ID (random; uniqueness, not reproducibility)."""
    return os.urandom(8).hex()


@dataclass(frozen=True)
class SpanContext:
    """The picklable cross-process handle: (trace, parent-span) IDs."""

    trace_id: str
    span_id: str


@dataclass
class TraceSpan:
    """One timed region of a run.

    ``start_unix_seconds`` is wall-clock (``time.time()``) so spans from
    different processes on the same machine order correctly;
    ``duration_seconds`` is measured with ``perf_counter`` so it is
    monotonic.  ``tags`` is a small JSON-safe dict — by convention every
    span carries a ``phase`` tag (``sweep``/``shard``/``ingest``/…)
    that the ``obs summarize`` per-phase breakdown groups on.
    """

    name: str
    trace_id: str
    span_id: str
    parent_id: str = ""
    start_unix_seconds: float = 0.0
    duration_seconds: float = 0.0
    tags: Dict[str, Any] = field(default_factory=dict)
    #: perf_counter at start; bookkeeping only, excluded from to_dict().
    _start_perf: float = field(default=0.0, repr=False, compare=False)

    def context(self) -> SpanContext:
        """The handle children (possibly in other processes) parent on."""
        return SpanContext(trace_id=self.trace_id, span_id=self.span_id)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_unix_seconds": self.start_unix_seconds,
            "duration_seconds": self.duration_seconds,
            "tags": dict(self.tags),
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "TraceSpan":
        return cls(
            name=str(payload["name"]),
            trace_id=str(payload["trace_id"]),
            span_id=str(payload["span_id"]),
            parent_id=str(payload.get("parent_id", "")),
            start_unix_seconds=float(payload.get("start_unix_seconds", 0.0)),
            duration_seconds=float(payload.get("duration_seconds", 0.0)),
            tags=dict(payload.get("tags", {})),
        )


#: Span sink: receives each finished span (a queue ``put``, a JSONL
#: writer, …).  Sink failures are swallowed — tracing must never kill
#: the run it observes.
SpanSink = Callable[[TraceSpan], None]


class Tracer:
    """Creates, times, and emits spans for one process of one run.

    The tracer keeps an open-span stack, so nested ``with`` blocks
    parent automatically; cross-process children pass the inherited
    :class:`SpanContext` explicitly.  All bookkeeping wall-clock is
    accumulated into :attr:`overhead_seconds` (guarded by a lock — the
    stream pipeline traces from three threads).
    """

    def __init__(
        self, *, trace_id: Optional[str] = None, sink: Optional[SpanSink] = None
    ) -> None:
        self._trace_id = trace_id or _new_id()
        self._sink = sink
        self._overhead = 0.0
        self._lock = threading.Lock()
        self._stack: List[str] = []

    @property
    def trace_id(self) -> str:
        return self._trace_id

    @property
    def overhead_seconds(self) -> float:
        """Wall-clock this tracer's own bookkeeping has consumed."""
        return self._overhead

    def add_overhead(self, seconds: float) -> None:
        """Fold in overhead measured elsewhere (e.g. worker span tags)."""
        with self._lock:
            self._overhead += max(seconds, 0.0)

    # ------------------------------------------------------------------ #
    # Span lifecycle
    # ------------------------------------------------------------------ #
    def start(
        self,
        name: str,
        *,
        parent: Optional[Union[SpanContext, TraceSpan, str]] = None,
        tags: Optional[Mapping[str, Any]] = None,
    ) -> TraceSpan:
        """Open a span.  ``parent`` defaults to the innermost open span."""
        t0 = time.perf_counter()
        if parent is None:
            parent_id = self._stack[-1] if self._stack else ""
        elif isinstance(parent, (SpanContext, TraceSpan)):
            parent_id = parent.span_id
        else:
            parent_id = parent
        span = TraceSpan(
            name=name,
            trace_id=self._trace_id,
            span_id=_new_id(),
            parent_id=parent_id,
            start_unix_seconds=time.time(),
            tags=dict(tags or {}),
        )
        self._stack.append(span.span_id)
        span._start_perf = time.perf_counter()
        with self._lock:
            self._overhead += span._start_perf - t0
        return span

    def finish(
        self, span: TraceSpan, *, root: bool = False, emit: bool = True
    ) -> TraceSpan:
        """Close a span, stamping duration (and, for roots, overhead tags).

        A ``root=True`` span self-accounts the whole tracer:
        ``obs_overhead_seconds`` is everything this tracer (plus any
        :meth:`add_overhead` contributions, e.g. from worker spans)
        spent on observability, and ``obs_overhead_fraction`` divides
        that by the root's own duration — the number budgeted below 5%.
        """
        t0 = time.perf_counter()
        span.duration_seconds = t0 - span._start_perf
        if self._stack and self._stack[-1] == span.span_id:
            self._stack.pop()
        elif span.span_id in self._stack:  # out-of-order finish (threads)
            self._stack.remove(span.span_id)
        if root:
            with self._lock:
                overhead = self._overhead
            span.tags["obs_overhead_seconds"] = round(overhead, 6)
            span.tags["obs_overhead_fraction"] = round(
                overhead / max(span.duration_seconds, 1e-9), 6
            )
        if emit and self._sink is not None:
            try:
                self._sink(span)
            except Exception:  # pragma: no cover - queue torn down mid-run
                pass
        with self._lock:
            self._overhead += time.perf_counter() - t0
        return span

    @contextmanager
    def span(
        self,
        name: str,
        *,
        parent: Optional[Union[SpanContext, TraceSpan, str]] = None,
        tags: Optional[Mapping[str, Any]] = None,
        root: bool = False,
    ) -> Iterator[TraceSpan]:
        """``with tracer.span("shard-0", tags={"phase": "shard"}):`` …"""
        span = self.start(name, parent=parent, tags=tags)
        try:
            yield span
        finally:
            self.finish(span, root=root)

    def record(
        self,
        name: str,
        *,
        start_unix_seconds: float,
        duration_seconds: float,
        parent: Optional[Union[SpanContext, TraceSpan, str]] = None,
        tags: Optional[Mapping[str, Any]] = None,
    ) -> TraceSpan:
        """Emit a span from timings measured elsewhere (already finished).

        The figure runner uses this: workers report each job's wall start
        and duration, and the parent files a span for it post-hoc without
        pickling a tracer into the pool.
        """
        t0 = time.perf_counter()
        if parent is None:
            parent_id = self._stack[-1] if self._stack else ""
        elif isinstance(parent, (SpanContext, TraceSpan)):
            parent_id = parent.span_id
        else:
            parent_id = parent
        span = TraceSpan(
            name=name,
            trace_id=self._trace_id,
            span_id=_new_id(),
            parent_id=parent_id,
            start_unix_seconds=start_unix_seconds,
            duration_seconds=duration_seconds,
            tags=dict(tags or {}),
        )
        if self._sink is not None:
            try:
                self._sink(span)
            except Exception:  # pragma: no cover
                pass
        with self._lock:
            self._overhead += time.perf_counter() - t0
        return span
