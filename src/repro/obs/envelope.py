"""The versioned JSONL event envelope unifying every obs record type.

One ``--metrics-out`` file carries four record kinds — cumulative
progress ``snapshot``\\ s, per-epoch ``series`` points, timing ``span``\\ s
and ``calibration`` events — each wrapped in the same envelope::

    {"v": 1, "kind": "snapshot", ...payload fields...}

``v`` is the schema version; ``kind`` selects the payload schema.  The
contract readers must honour (and :func:`unwrap` implements): an unknown
``kind`` or a *future* ``v`` is **skipped with a warning**, never a
crash — an old ``obs summarize`` pointed at a newer run degrades to
partial output instead of a traceback.

:func:`decode` closes the round trip: it rebuilds the typed record
(:class:`~repro.obs.metrics.ProgressSnapshot`,
:class:`~repro.obs.series.SeriesPoint`,
:class:`~repro.obs.trace.TraceSpan`,
:class:`~repro.obs.metrics.CalibrationEvent`) from an unwrapped payload,
dropping derived fields (``epochs_per_second`` …) that ride along in
``to_dict()`` form.  The property tests assert
``decode(*unwrap(wrap(kind, record.to_dict())))`` reproduces every
emitted record exactly.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path
from typing import Any, Dict, Iterator, Mapping, Optional, Tuple

__all__ = [
    "ENVELOPE_VERSION",
    "KINDS",
    "EnvelopeWarning",
    "wrap",
    "unwrap",
    "decode",
    "read_records",
]

#: Current schema version of the JSONL envelope.
ENVELOPE_VERSION = 1

#: The record kinds this version understands.
KINDS = ("snapshot", "series", "span", "calibration")


class EnvelopeWarning(UserWarning):
    """A JSONL record was skipped (unknown kind, future version, garbage)."""


def wrap(kind: str, payload: Mapping[str, Any]) -> Dict[str, Any]:
    """Envelope a payload dict.  ``kind`` must be one of :data:`KINDS`.

    ``v`` and ``kind`` are reserved envelope keys.  A payload's own
    ``kind`` field (calibration events carry one) is stored as ``event``
    so it cannot clobber the envelope's dispatch key; :func:`decode`
    maps it back.  A payload ``v`` is dropped outright.
    """
    if kind not in KINDS:
        raise ValueError(f"unknown envelope kind {kind!r}; expected one of {KINDS}")
    record: Dict[str, Any] = {"v": ENVELOPE_VERSION, "kind": kind}
    for key, value in payload.items():
        if key == "v":
            continue
        record["event" if key == "kind" else key] = value
    return record


def unwrap(record: Mapping[str, Any]) -> Optional[Tuple[str, Dict[str, Any]]]:
    """``(kind, payload)`` for a readable record, ``None`` (+ warning) else.

    Skips — with an :class:`EnvelopeWarning` naming the reason — records
    whose version is missing/newer than this reader, or whose kind is
    unrecognized.  Readers stay forward-compatible by construction.
    """
    version = record.get("v")
    if not isinstance(version, int) or version < 1:
        warnings.warn(
            f"skipping unversioned obs record (v={version!r})", EnvelopeWarning,
            stacklevel=2,
        )
        return None
    if version > ENVELOPE_VERSION:
        warnings.warn(
            f"skipping obs record from a future schema (v={version} > "
            f"{ENVELOPE_VERSION}); upgrade to read it",
            EnvelopeWarning,
            stacklevel=2,
        )
        return None
    kind = record.get("kind")
    if kind not in KINDS:
        warnings.warn(
            f"skipping obs record of unknown kind {kind!r} "
            f"(known: {', '.join(KINDS)})",
            EnvelopeWarning,
            stacklevel=2,
        )
        return None
    payload = {key: value for key, value in record.items() if key not in ("v", "kind")}
    return kind, payload


def decode(kind: str, payload: Mapping[str, Any]) -> Any:
    """Rebuild the typed record behind an unwrapped payload.

    Derived ``to_dict()`` extras (``epochs_per_second``,
    ``billing_error_fraction`` on snapshots) are dropped so the
    constructor sees exactly its dataclass fields; unknown *payload*
    fields added by future minor revisions are ignored the same way.
    """
    # Imported lazily: repro.obs.metrics imports wrap() from this module.
    from repro.obs.metrics import CalibrationEvent, ProgressSnapshot
    from repro.obs.series import SeriesPoint
    from repro.obs.trace import TraceSpan

    if kind == "snapshot":
        fields = ProgressSnapshot.__dataclass_fields__
        return ProgressSnapshot(**{k: v for k, v in payload.items() if k in fields})
    if kind == "series":
        return SeriesPoint.from_payload(payload)
    if kind == "span":
        return TraceSpan.from_payload(payload)
    if kind == "calibration":
        fields = CalibrationEvent.__dataclass_fields__
        data = dict(payload)
        if "event" in data and "kind" not in data:
            data["kind"] = data.pop("event")  # undo wrap()'s rename
        return CalibrationEvent(**{k: v for k, v in data.items() if k in fields})
    raise ValueError(f"unknown envelope kind {kind!r}")


def read_records(path: Path) -> Iterator[Tuple[str, Dict[str, Any]]]:
    """Yield ``(kind, payload)`` per readable line of an obs JSONL file.

    Unparseable lines and unreadable envelopes are skipped with an
    :class:`EnvelopeWarning`; the iterator never raises on content (only
    on a missing file).
    """
    with Path(path).open("r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                warnings.warn(
                    f"{path}:{number}: skipping unparseable JSONL line",
                    EnvelopeWarning,
                    stacklevel=2,
                )
                continue
            if not isinstance(record, dict):
                warnings.warn(
                    f"{path}:{number}: skipping non-object JSONL line",
                    EnvelopeWarning,
                    stacklevel=2,
                )
                continue
            unwrapped = unwrap(record)
            if unwrapped is not None:
                yield unwrapped
