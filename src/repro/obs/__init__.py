"""Lightweight sweep observability (metrics snapshots, emitters, collector).

See :mod:`repro.obs.metrics` and docs/observability.md.
"""

from repro.obs.metrics import (
    CalibrationEvent,
    JsonlWriter,
    MetricsCollector,
    MetricsEmitter,
    ProgressSnapshot,
)

__all__ = [
    "CalibrationEvent",
    "JsonlWriter",
    "MetricsCollector",
    "MetricsEmitter",
    "ProgressSnapshot",
]
