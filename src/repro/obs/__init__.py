"""Run observability: snapshots, per-epoch series, span tracing, analysis.

The package splits along the run lifecycle:

* :mod:`repro.obs.metrics` — live side: snapshot/emitter/collector.
* :mod:`repro.obs.trace` — span tracing (``Tracer``/``TraceSpan``).
* :mod:`repro.obs.series` — bounded per-epoch time series.
* :mod:`repro.obs.envelope` — the versioned JSONL record envelope.
* :mod:`repro.obs.analyze` — offline ``obs summarize|tail|export-trace``.

See docs/observability.md for the cookbook.
"""

from repro.obs.envelope import (
    ENVELOPE_VERSION,
    EnvelopeWarning,
    read_records,
    unwrap,
    wrap,
)
from repro.obs.metrics import (
    CalibrationEvent,
    JsonlWriter,
    MetricsCollector,
    MetricsEmitter,
    ProgressSnapshot,
)
from repro.obs.series import SeriesBatch, SeriesBuffer, SeriesPoint
from repro.obs.trace import SpanContext, Tracer, TraceSpan

__all__ = [
    "ENVELOPE_VERSION",
    "CalibrationEvent",
    "EnvelopeWarning",
    "JsonlWriter",
    "MetricsCollector",
    "MetricsEmitter",
    "ProgressSnapshot",
    "SeriesBatch",
    "SeriesBuffer",
    "SeriesPoint",
    "SpanContext",
    "TraceSpan",
    "Tracer",
    "read_records",
    "unwrap",
    "wrap",
]
