"""Lightweight sweep observability (metrics snapshots, emitters, collector).

See :mod:`repro.obs.metrics` and docs/observability.md.
"""

from repro.obs.metrics import (
    JsonlWriter,
    MetricsCollector,
    MetricsEmitter,
    ProgressSnapshot,
)

__all__ = [
    "JsonlWriter",
    "MetricsCollector",
    "MetricsEmitter",
    "ProgressSnapshot",
]
