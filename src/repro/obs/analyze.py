"""Offline analysis of obs JSONL files: summarize, tail, export-trace.

The back half of the observability loop.  A run writes one enveloped
JSONL (``--metrics-out``, see :mod:`repro.obs.envelope`); this module
turns that file into answers:

* :func:`summarize` — per-phase wall-clock breakdown, top-N slowest
  spans, snapshot/series/calibration aggregates.
* :func:`tail_records` — follow a growing file, rendering each record
  as the one-liner its emitter would have printed live.
* :func:`export_chrome_trace` — Chrome trace-event JSON (the
  ``chrome://tracing`` / Perfetto format): spans become ``ph:"X"``
  duration events on per-phase tracks, series points become ``ph:"C"``
  counter tracks.

Everything here tolerates partial files by construction: unknown kinds
and future schema versions are skipped with a warning by the envelope
reader, so ``obs summarize`` degrades instead of crashing.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.obs.envelope import read_records
from repro.obs.metrics import CalibrationEvent, ProgressSnapshot
from repro.obs.series import SeriesPoint
from repro.obs.trace import TraceSpan

__all__ = [
    "ObsLog",
    "load_log",
    "summarize",
    "format_summary",
    "tail_records",
    "render_record",
    "export_chrome_trace",
]


@dataclass
class ObsLog:
    """Every readable record of one obs JSONL file, typed and grouped."""

    snapshots: List[ProgressSnapshot] = field(default_factory=list)
    series: List[SeriesPoint] = field(default_factory=list)
    spans: List[TraceSpan] = field(default_factory=list)
    calibrations: List[CalibrationEvent] = field(default_factory=list)

    @property
    def record_count(self) -> int:
        return (
            len(self.snapshots)
            + len(self.series)
            + len(self.spans)
            + len(self.calibrations)
        )


def load_log(path: Path) -> ObsLog:
    """Read and type every record of an obs JSONL file (skips unknowns)."""
    from repro.obs.envelope import decode

    log = ObsLog()
    for kind, payload in read_records(Path(path)):
        try:
            record = decode(kind, payload)
        except (KeyError, TypeError, ValueError):
            continue  # malformed payload of a known kind: skip, keep reading
        if kind == "snapshot":
            log.snapshots.append(record)
        elif kind == "series":
            log.series.append(record)
        elif kind == "span":
            log.spans.append(record)
        elif kind == "calibration":
            log.calibrations.append(record)
    return log


def _span_phase(span: TraceSpan) -> str:
    phase = span.tags.get("phase")
    return str(phase) if phase else span.name


def summarize(path: Path, *, top: int = 10) -> Dict[str, Any]:
    """Aggregate an obs JSONL into the dict ``obs summarize`` prints.

    The per-phase breakdown sums span durations grouped by their
    ``phase`` tag (falling back to the span name), so a sharded sweep
    reads as ``sweep`` / ``shard`` / ``merge`` rows; ``top_spans`` lists
    the N slowest individual spans — the critical-path suspects.
    """
    log = load_log(path)

    phases: Dict[str, Dict[str, Any]] = {}
    roots: List[TraceSpan] = []
    for span in log.spans:
        bucket = phases.setdefault(
            _span_phase(span), {"spans": 0, "total_seconds": 0.0, "max_seconds": 0.0}
        )
        bucket["spans"] += 1
        bucket["total_seconds"] += span.duration_seconds
        bucket["max_seconds"] = max(bucket["max_seconds"], span.duration_seconds)
        if not span.parent_id:
            roots.append(span)

    top_spans = sorted(
        log.spans, key=lambda s: s.duration_seconds, reverse=True
    )[: max(top, 0)]

    finals: Dict[str, ProgressSnapshot] = {}
    for snap in log.snapshots:
        if snap.done or snap.shard not in finals:
            finals[snap.shard] = snap
    epochs = sum(s.epochs_done for s in finals.values())
    wall = max((s.wall_seconds for s in finals.values()), default=0.0)

    overhead = {
        "obs_overhead_seconds": sum(
            float(r.tags.get("obs_overhead_seconds", 0.0) or 0.0) for r in roots
        ),
        "obs_overhead_fraction": max(
            (
                float(r.tags.get("obs_overhead_fraction", 0.0) or 0.0)
                for r in roots
            ),
            default=0.0,
        ),
    }

    faulted = [p for p in log.series if p.fault_injections > 0]
    series_summary: Dict[str, Any] = {
        "points": len(log.series),
        "shards": sorted({p.shard for p in log.series}),
        "faulted_points": len(faulted),
    }
    if log.series:
        series_summary["epoch_range"] = [
            min(p.epoch for p in log.series),
            max(p.epoch for p in log.series),
        ]

    return {
        "records": log.record_count,
        "snapshots": len(log.snapshots),
        "calibration_events": len(log.calibrations),
        "shards": sorted(finals),
        "epochs": epochs,
        "wall_seconds": wall,
        "epochs_per_second": epochs / wall if wall > 0 else 0.0,
        "completions": sum(s.completions for s in finals.values()),
        "fault_injections": sum(s.fault_injections for s in finals.values()),
        "spans": len(log.spans),
        "trace_ids": sorted({s.trace_id for s in log.spans}),
        "phases": dict(sorted(phases.items())),
        "top_spans": [
            {
                "name": s.name,
                "duration_seconds": s.duration_seconds,
                "phase": _span_phase(s),
                "span_id": s.span_id,
            }
            for s in top_spans
        ],
        "series": series_summary,
        **overhead,
    }


def format_summary(summary: Mapping[str, Any]) -> str:
    """Human-readable rendering of :func:`summarize`'s dict."""
    lines: List[str] = []
    lines.append(
        f"records: {summary['records']} "
        f"({summary['snapshots']} snapshots, {summary['spans']} spans, "
        f"{summary['series']['points']} series points, "
        f"{summary['calibration_events']} calibration events)"
    )
    if summary["shards"]:
        lines.append(
            f"run: {summary['epochs']:,} epochs over shards "
            f"{', '.join(summary['shards'])} in {summary['wall_seconds']:.2f}s "
            f"({summary['epochs_per_second']:,.0f} epochs/s), "
            f"{summary['completions']} completions, "
            f"{summary['fault_injections']} faults injected"
        )
    if summary["phases"]:
        lines.append("phase breakdown (wall-clock, summed across spans):")
        width = max(len(name) for name in summary["phases"])
        for name, bucket in summary["phases"].items():
            lines.append(
                f"  {name:<{width}}  {bucket['total_seconds']:9.3f}s total  "
                f"{bucket['max_seconds']:9.3f}s max  x{bucket['spans']}"
            )
    if summary["top_spans"]:
        lines.append(f"slowest spans (top {len(summary['top_spans'])}):")
        for entry in summary["top_spans"]:
            lines.append(
                f"  {entry['duration_seconds']:9.3f}s  {entry['name']}"
                f"  [{entry['phase']}]"
            )
    if summary["spans"]:
        lines.append(
            f"observability overhead: {summary['obs_overhead_seconds']:.4f}s "
            f"({100.0 * summary['obs_overhead_fraction']:.2f}% of root span)"
        )
    series = summary["series"]
    if series["points"]:
        low, high = series["epoch_range"]
        lines.append(
            f"series: {series['points']} points over epochs {low}..{high}, "
            f"{series['faulted_points']} in faulted windows"
        )
    return "\n".join(lines)


def render_record(kind: str, payload: Mapping[str, Any]) -> str:
    """One tail line per record, echoing what the live run printed."""
    from repro.obs.envelope import decode

    try:
        record = decode(kind, payload)
    except (KeyError, TypeError, ValueError):
        return f"[{kind}] {json.dumps(dict(payload), sort_keys=True)}"
    if kind == "snapshot":
        return record.render_line()
    if kind == "calibration":
        return record.render_line()
    if kind == "span":
        return (
            f"[span] {record.name} {record.duration_seconds * 1e3:.1f}ms"
            f" [{_span_phase(record)}]"
        )
    point = record  # series
    line = (
        f"[series] shard {point.shard} epoch {point.epoch}: "
        f"{point.completions} completed, "
        f"stall {100.0 * point.shared_stall_fraction:.1f}%"
    )
    if point.fault_injections or point.meter_dropped:
        line += (
            f", faults {point.fault_injections}, meter -{point.meter_dropped}"
        )
    return line


def tail_records(
    path: Path,
    *,
    follow: bool = True,
    poll_interval_seconds: float = 0.2,
    max_seconds: Optional[float] = None,
) -> Iterator[Tuple[str, Dict[str, Any]]]:
    """Yield ``(kind, payload)`` as records land in a growing JSONL.

    Starts at the beginning of the file, then (with ``follow``) polls for
    appended lines until ``max_seconds`` elapses or the caller stops
    consuming.  ``follow=False`` yields what exists and returns —
    the testable mode.
    """
    from repro.obs.envelope import unwrap

    deadline = (
        None if max_seconds is None else time.perf_counter() + max_seconds
    )
    position = 0
    buffer = ""
    while True:
        target = Path(path)
        if target.exists():
            with target.open("r", encoding="utf-8") as handle:
                handle.seek(position)
                chunk = handle.read()
                position = handle.tell()
            buffer += chunk
            while "\n" in buffer:
                line, buffer = buffer.split("\n", 1)
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if not isinstance(record, dict):
                    continue
                unwrapped = unwrap(record)
                if unwrapped is not None:
                    yield unwrapped
        if not follow:
            return
        if deadline is not None and time.perf_counter() >= deadline:
            return
        time.sleep(poll_interval_seconds)


def export_chrome_trace(path: Path, out_path: Path) -> Dict[str, Any]:
    """Write a Chrome trace-event JSON viewable in Perfetto.

    Spans become ``ph:"X"`` complete events — ``ts``/``dur`` in
    microseconds of wall-clock — grouped onto one ``tid`` track per
    phase so the sweep/shard/ingest lanes stack visually.  Per-epoch
    series become ``ph:"C"`` counter tracks (completions, stall
    fraction, faults) keyed by shard.  Returns the trace dict it wrote
    (``traceEvents`` list), so callers can assert on the export.
    """
    log = load_log(Path(path))
    events: List[Dict[str, Any]] = []
    pid = 1
    events.append(
        {
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "name": "process_name",
            "args": {"name": "repro run"},
        }
    )

    tids: Dict[str, int] = {}

    def tid_for(track: str) -> int:
        if track not in tids:
            tids[track] = len(tids) + 1
            events.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": tids[track],
                    "name": "thread_name",
                    "args": {"name": track},
                }
            )
        return tids[track]

    # Spans carry absolute unix starts; series points carry run-relative
    # seconds.  Rebase spans onto the earliest span start so both record
    # types land on one comparable timeline beginning near ts=0.
    base = min((s.start_unix_seconds for s in log.spans), default=0.0)

    for span in log.spans:
        events.append(
            {
                "ph": "X",
                "pid": pid,
                "tid": tid_for(_span_phase(span)),
                "name": span.name,
                "ts": (span.start_unix_seconds - base) * 1e6,
                "dur": max(span.duration_seconds, 1e-6) * 1e6,
                "args": {
                    "trace_id": span.trace_id,
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    **span.tags,
                },
            }
        )

    for point in log.series:
        ts = point.time_seconds * 1e6
        track = f"series shard {point.shard}"
        events.append(
            {
                "ph": "C",
                "pid": pid,
                "tid": tid_for(track),
                "name": f"shard {point.shard} counters",
                "ts": ts,
                "args": {
                    "completions": point.completions,
                    "shared_stall_pct": 100.0 * point.shared_stall_fraction,
                    "fault_injections": point.fault_injections,
                    "meter_dropped": point.meter_dropped,
                },
            }
        )

    trace = {"traceEvents": events, "displayTimeUnit": "ms"}
    out = Path(out_path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(trace, sort_keys=True), encoding="utf-8")
    return trace
