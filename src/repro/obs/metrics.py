"""Live sweep observability: snapshots, emitters, and the collector.

Long sharded sweeps used to run silently until the merge.  This module is
the thin metrics layer between the sweep engines and the CLI:

* :class:`ProgressSnapshot` — one frozen reading of a shard's progress
  (epochs, completions, fault counters, billing error so far).
* :class:`MetricsEmitter` — the *worker* side.  It is the ``progress``
  callback handed to :meth:`FleetSweep.run`; it stamps payload dicts into
  snapshots and puts them on a (multiprocessing) queue, throttled by
  wall-clock so emission stays far below 1% of epoch work.  Final
  (``done=True``) snapshots always pass the throttle.
* :class:`MetricsCollector` — the *parent* side.  A daemon thread drains
  the queue, optionally renders one status line per snapshot batch to a
  stream, optionally appends every snapshot to a JSONL file
  (``--metrics-out``), and aggregates a summary dict that the CLI records
  into ``BENCH_engine.json`` run extras.

Observability is strictly read-only: emitters see counters the engines
already maintain, so ``--metrics`` can never change a sweep's results.
See docs/observability.md for the cookbook.
"""

from __future__ import annotations

import json
import queue as queue_module
import threading
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import IO, Any, Dict, Mapping, Optional

from repro.obs.envelope import wrap
from repro.obs.series import SeriesBatch, SeriesBuffer, SeriesPoint
from repro.obs.trace import TraceSpan

#: Payload keys a sweep backend must provide to its progress callback.
PAYLOAD_KEYS = (
    "backend",
    "scenarios_total",
    "scenarios_done",
    "epochs_done",
    "epochs_total",
    "completions",
    "submissions",
    "fault_injections",
    "meter_dropped",
    "meter_duplicated",
    "billed_gb_seconds",
    "true_gb_seconds",
    "done",
)


@dataclass(frozen=True)
class ProgressSnapshot:
    """One shard's progress at one instant (queue-serialized, picklable)."""

    shard: str
    backend: str
    scenarios_total: int
    scenarios_done: int
    epochs_done: int
    epochs_total: int
    completions: int
    submissions: int
    fault_injections: int
    meter_dropped: int
    meter_duplicated: int
    billed_gb_seconds: float
    true_gb_seconds: float
    wall_seconds: float
    done: bool = False

    @property
    def epochs_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.epochs_done / self.wall_seconds

    @property
    def progress_fraction(self) -> float:
        if self.epochs_total <= 0:
            return 0.0
        return min(self.epochs_done / self.epochs_total, 1.0)

    @property
    def billing_error_fraction(self) -> float:
        if self.true_gb_seconds <= 0:
            return 0.0
        return (self.billed_gb_seconds - self.true_gb_seconds) / self.true_gb_seconds

    def to_dict(self) -> Dict[str, Any]:
        record = asdict(self)
        record["epochs_per_second"] = self.epochs_per_second
        record["billing_error_fraction"] = self.billing_error_fraction
        return record

    def render_line(self) -> str:
        """The one-line form the CLI prints per update."""
        percent = 100.0 * self.progress_fraction
        line = (
            f"[metrics] shard {self.shard} [{self.backend}] "
            f"{percent:5.1f}% epochs, {self.epochs_per_second:,.0f} epochs/s, "
            f"{self.completions} completed"
        )
        if self.fault_injections or self.meter_dropped or self.meter_duplicated:
            line += (
                f", faults: {self.fault_injections} injected, "
                f"meter -{self.meter_dropped}/+{self.meter_duplicated}"
            )
        if self.true_gb_seconds > 0:
            line += f", bill err {100.0 * self.billing_error_fraction:+.2f}%"
        if self.done:
            line += " [done]"
        return line


@dataclass(frozen=True)
class CalibrationEvent:
    """One observable step of the continuous-calibration loop.

    The calibrate service emits these through an observer callback — the
    calibration twin of :class:`ProgressSnapshot`.  ``kind`` is one of
    ``round`` (a drift-check round finished), ``candidate`` (one grid
    point scored, ``candidate_index``/``candidates_total`` carry search
    progress) or ``republish`` (a new fit was atomically published,
    ``fingerprint`` names the cache entry's self-fingerprint).  Strictly
    read-only, like all observability here: observers see results the
    service already computed.
    """

    kind: str
    round_index: int
    parameter: str
    value: float = 0.0
    mape: float = 0.0
    threshold: float = 0.0
    drift_detected: bool = False
    candidate_index: int = 0
    candidates_total: int = 0
    fingerprint: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    def render_line(self) -> str:
        """The one-line form ``repro calibrate`` prints per event."""
        head = f"[calibrate] round {self.round_index}"
        if self.kind == "candidate":
            return (
                f"{head}: candidate {self.candidate_index + 1}/"
                f"{self.candidates_total} {self.parameter}={self.value:.6g} "
                f"mape {100.0 * self.mape:.3f}%"
            )
        if self.kind == "republish":
            line = (
                f"{head}: republish {self.parameter}={self.value:.6g} "
                f"mape {100.0 * self.mape:.3f}%"
            )
            if self.fingerprint:
                line += f" fit {self.fingerprint[:12]}"
            return line
        verdict = "drift detected" if self.drift_detected else "stable"
        return (
            f"{head}: incumbent {self.parameter}={self.value:.6g} "
            f"windowed mape {100.0 * self.mape:.3f}% "
            f"(threshold {100.0 * self.threshold:.3f}%) — {verdict}"
        )


class MetricsEmitter:
    """Worker-side throttled snapshot publisher (the progress callback).

    ``queue`` only needs a ``put`` method — a ``multiprocessing.Manager``
    queue proxy in sharded runs, a plain ``queue.Queue`` inline.  Queue
    failures are swallowed: metrics must never kill a sweep.
    """

    def __init__(
        self,
        queue: Any,
        *,
        shard: int = 0,
        label: str = "",
        min_interval_seconds: float = 0.5,
        series_budget: Optional[int] = None,
    ) -> None:
        self._queue = queue
        self._shard = f"{label}{shard}"
        self._interval = max(min_interval_seconds, 0.0)
        self._start = time.perf_counter()
        self._last_emit = float("-inf")
        #: Per-epoch series ring (see repro.obs.series); None disables
        #: sampling — drive loops probe for ``epoch_sample`` before
        #: building points, so a disabled emitter costs nothing per epoch.
        self._series = SeriesBuffer(series_budget) if series_budget else None

    @property
    def epoch_sample(self):
        """The per-epoch series sampler, or ``None`` when disabled.

        Drive loops duck-type on this: ``getattr(progress,
        "epoch_sample", None)`` returning a callable turns on per-epoch
        :class:`~repro.obs.series.SeriesPoint` sampling.  Points are
        ring-buffered locally (deterministic stride decimation bounds
        memory) and flushed as one batch with the final snapshot.
        """
        if self._series is None:
            return None
        return self._series.offer

    def __call__(self, payload: Mapping[str, Any]) -> None:
        now = time.perf_counter()
        done = bool(payload.get("done", False))
        if not done and now - self._last_emit < self._interval:
            return
        self._last_emit = now
        snapshot = ProgressSnapshot(
            shard=self._shard,
            wall_seconds=now - self._start,
            **{key: payload[key] for key in PAYLOAD_KEYS if key in payload},
        )
        try:
            if done and self._series is not None and len(self._series):
                self._queue.put(self._series.batch(self._shard))
            self._queue.put(snapshot)
        except Exception:  # pragma: no cover - queue torn down mid-run
            pass


class MetricsCollector:
    """Parent-side queue drainer: renders, records, and summarizes.

    Start before launching the sweep, stop after it returns; records
    still in flight at :meth:`stop` are drained before the file closes.
    Beyond snapshots, the queue may carry
    :class:`~repro.obs.trace.TraceSpan`\\ s,
    :class:`~repro.obs.series.SeriesBatch`\\ es / points, and
    :class:`CalibrationEvent`\\ s — every kind is written to the
    ``--metrics-out`` JSONL in the versioned envelope
    (:mod:`repro.obs.envelope`); only snapshots render status lines.
    """

    def __init__(
        self,
        queue: Any,
        *,
        stream: Optional[IO[str]] = None,
        out_path: Optional[Path] = None,
        min_render_interval_seconds: float = 0.5,
    ) -> None:
        self._queue = queue
        self._stream = stream
        self._out_path = None if out_path is None else Path(out_path)
        self._render_interval = min_render_interval_seconds
        self._last_render = float("-inf")
        self._latest: Dict[str, ProgressSnapshot] = {}
        self._final: Dict[str, ProgressSnapshot] = {}
        self._snapshots_seen = 0
        self._spans_seen = 0
        self._series_points_seen = 0
        self._span_overhead = 0.0
        self._out_file: Optional[IO[str]] = None
        self._stopping = threading.Event()
        self._thread: Optional[threading.Thread] = None
        #: Serializes file writes against close; once ``_out_closed`` is
        #: set under this lock, no further write can race the close.
        self._io_lock = threading.Lock()
        self._out_closed = False

    def start(self) -> "MetricsCollector":
        if self._out_path is not None:
            self._out_path.parent.mkdir(parents=True, exist_ok=True)
            self._out_file = self._out_path.open("a", encoding="utf-8")
            self._out_closed = False
        self._thread = threading.Thread(
            target=self._drain, name="metrics-collector", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Drain to empty, then close the output; never write afterwards.

        The drain thread keeps consuming until the queue is empty *and*
        the stop flag is set.  If it fails to finish within the join
        timeout (a wedged manager queue), the output file is still closed
        safely: ``_write_record`` and the close both hold ``_io_lock``
        and writes check ``_out_closed`` first, so a straggling record is
        dropped instead of racing a closed file (the old ValueError).
        """
        self._stopping.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=10.0)
            self._thread = None
        if thread is None or not thread.is_alive():
            # Thread exited (or never ran): anything still queued — e.g.
            # put between the thread's last Empty and our join — is ours
            # to drain inline before the file closes.
            self._drain_remaining()
        with self._io_lock:
            self._out_closed = True
            if self._out_file is not None:
                self._out_file.close()
                self._out_file = None

    def _drain_remaining(self) -> None:
        while True:
            try:
                record = self._queue.get_nowait()
            except queue_module.Empty:
                return
            except (EOFError, OSError):  # pragma: no cover - manager gone
                return
            self._handle(record)

    def _drain(self) -> None:
        while True:
            try:
                record = self._queue.get(timeout=0.1)
            except queue_module.Empty:
                if self._stopping.is_set():
                    return
                continue
            except (EOFError, OSError):  # pragma: no cover - manager gone
                return
            self._handle(record)

    def _write_record(self, kind: str, payload: Mapping[str, Any]) -> None:
        with self._io_lock:
            if self._out_file is None or self._out_closed:
                return
            self._out_file.write(
                json.dumps(wrap(kind, payload), sort_keys=True) + "\n"
            )
            self._out_file.flush()

    def _handle(self, record: Any) -> None:
        if isinstance(record, ProgressSnapshot):
            self._snapshots_seen += 1
            self._latest[record.shard] = record
            if record.done:
                self._final[record.shard] = record
            self._write_record("snapshot", record.to_dict())
            if self._stream is not None:
                now = time.perf_counter()
                if record.done or now - self._last_render >= self._render_interval:
                    self._last_render = now
                    print(record.render_line(), file=self._stream, flush=True)
        elif isinstance(record, TraceSpan):
            self._spans_seen += 1
            self._span_overhead += float(
                record.tags.get("obs_overhead_seconds", 0.0) or 0.0
            )
            self._write_record("span", record.to_dict())
        elif isinstance(record, SeriesBatch):
            for point in record.points:
                self._series_points_seen += 1
                self._write_record("series", point.to_dict())
        elif isinstance(record, SeriesPoint):
            self._series_points_seen += 1
            self._write_record("series", record.to_dict())
        elif isinstance(record, CalibrationEvent):
            self._write_record("calibration", record.to_dict())
        # Unknown queue items are dropped: the collector must survive
        # whatever a mismatched worker version manages to enqueue.

    @property
    def snapshots_seen(self) -> int:
        return self._snapshots_seen

    @property
    def spans_seen(self) -> int:
        return self._spans_seen

    @property
    def series_points_seen(self) -> int:
        return self._series_points_seen

    @property
    def span_overhead_seconds(self) -> float:
        """Observability overhead the collected spans self-reported.

        Worker-side tracers stamp ``obs_overhead_seconds`` on their shard
        root spans; the run's parent tracer folds this in before closing
        its own root, so the published ``obs_overhead_fraction`` covers
        every process of the run.
        """
        return self._span_overhead

    def summary(self) -> Dict[str, Any]:
        """Aggregate view over the final (or latest) per-shard snapshots.

        Wall-clock-free counters here are deterministic for a seeded
        spec; ``epochs_per_second`` (per shard and the cross-shard
        aggregate) and ``wall_seconds`` are the timing-derived fields.
        The aggregate divides total epochs by the *longest* shard wall —
        shards run concurrently, so that is the fleet's real throughput.
        """
        finals = {
            shard: self._final.get(shard, latest)
            for shard, latest in self._latest.items()
        }
        per_shard = {
            shard: {
                "backend": snap.backend,
                "epochs": snap.epochs_done,
                "completions": snap.completions,
                "epochs_per_second": snap.epochs_per_second,
                "fault_injections": snap.fault_injections,
                "meter_dropped": snap.meter_dropped,
                "meter_duplicated": snap.meter_duplicated,
                "done": snap.done,
            }
            for shard, snap in sorted(finals.items())
        }
        epochs = sum(s.epochs_done for s in finals.values())
        wall = max((s.wall_seconds for s in finals.values()), default=0.0)
        return {
            "snapshots": self._snapshots_seen,
            "spans": self._spans_seen,
            "series_points": self._series_points_seen,
            "shards": per_shard,
            "epochs": epochs,
            "wall_seconds": wall,
            "epochs_per_second": epochs / wall if wall > 0 else 0.0,
            "completions": sum(s.completions for s in finals.values()),
            "fault_injections": sum(s.fault_injections for s in finals.values()),
            "meter_dropped": sum(s.meter_dropped for s in finals.values()),
            "meter_duplicated": sum(s.meter_duplicated for s in finals.values()),
        }


class JsonlWriter:
    """Append-only JSONL event stream (used by ``run --metrics-out``)."""

    def __init__(self, path: Path) -> None:
        self._path = Path(path)
        self._file: Optional[IO[str]] = None

    def write(self, record: Mapping[str, Any]) -> None:
        if self._file is None:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            self._file = self._path.open("a", encoding="utf-8")
        self._file.write(json.dumps(dict(record), sort_keys=True) + "\n")
        self._file.flush()

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "JsonlWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
