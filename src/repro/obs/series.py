"""Per-epoch time-series telemetry with bounded, deterministic memory.

Cumulative :class:`~repro.obs.metrics.ProgressSnapshot`\\ s say how far a
run got; they cannot say *when* a fault window degraded throughput or how
the billing error grew.  A :class:`SeriesPoint` is one epoch-indexed
reading of the counters the engines already maintain — completions,
shared-stall fraction, fault injections, meter drops, billing error —
sampled inside the instrumented drive loops (vector sweep and stream
replay; the scalar backend advances machine-by-machine and keeps its
cumulative snapshots instead).

A week-long replay steps hundreds of millions of epochs, so raw
per-epoch retention is a non-starter.  :class:`SeriesBuffer` bounds the
series to a configurable point budget by *stride decimation*: when the
buffer fills, every other retained point is dropped and the sampling
stride doubles, so the kept points are exactly the epochs divisible by
the final stride.  The end state is a pure function of the epoch
sequence — never of wall-clock — so two identical runs downsample to
identical series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Tuple

__all__ = ["SeriesPoint", "SeriesBatch", "SeriesBuffer"]


@dataclass(frozen=True)
class SeriesPoint:
    """One epoch's reading of a run's live counters (queue-picklable)."""

    shard: str
    epoch: int
    time_seconds: float
    completions: int
    shared_stall_fraction: float
    fault_injections: int
    meter_dropped: int
    billing_error_fraction: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "shard": self.shard,
            "epoch": self.epoch,
            "time_seconds": self.time_seconds,
            "completions": self.completions,
            "shared_stall_fraction": self.shared_stall_fraction,
            "fault_injections": self.fault_injections,
            "meter_dropped": self.meter_dropped,
            "billing_error_fraction": self.billing_error_fraction,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "SeriesPoint":
        return cls(
            shard=str(payload.get("shard", "")),
            epoch=int(payload["epoch"]),
            time_seconds=float(payload.get("time_seconds", 0.0)),
            completions=int(payload.get("completions", 0)),
            shared_stall_fraction=float(payload.get("shared_stall_fraction", 0.0)),
            fault_injections=int(payload.get("fault_injections", 0)),
            meter_dropped=int(payload.get("meter_dropped", 0)),
            billing_error_fraction=float(payload.get("billing_error_fraction", 0.0)),
        )


@dataclass(frozen=True)
class SeriesBatch:
    """A shard's whole (downsampled) series, shipped over the queue once.

    Workers buffer points locally and flush a single batch with the final
    ``done`` snapshot — one queue message instead of one per epoch.
    """

    shard: str
    points: Tuple[SeriesPoint, ...]
    stride: int


class SeriesBuffer:
    """Epoch-series ring with deterministic stride decimation.

    ``budget`` caps retained points.  On overflow the buffer keeps every
    other point and doubles its stride, after which only epochs divisible
    by the new stride are accepted — so the retained set is always
    ``{epochs seen} ∩ {multiples of stride}``, truncated never by time,
    only by the budget.  Deterministic: identical epoch sequences yield
    identical buffers regardless of wall-clock or call timing.
    """

    def __init__(self, budget: int = 512) -> None:
        if budget < 2:
            raise ValueError("series budget must be >= 2")
        self._budget = budget
        self._stride = 1
        self._points: List[SeriesPoint] = []

    @property
    def budget(self) -> int:
        return self._budget

    @property
    def stride(self) -> int:
        """Current epoch stride (1 until the first decimation)."""
        return self._stride

    @property
    def points(self) -> Tuple[SeriesPoint, ...]:
        return tuple(self._points)

    def __len__(self) -> int:
        return len(self._points)

    def offer(self, point: SeriesPoint) -> bool:
        """Consider one epoch's point; returns whether it was retained."""
        if point.epoch % self._stride != 0:
            return False
        self._points.append(point)
        if len(self._points) >= self._budget:
            # Halve: keep epochs divisible by the doubled stride.  The
            # kept list stays epoch-sorted because offers arrive in
            # epoch order.
            self._stride *= 2
            self._points = [
                p for p in self._points if p.epoch % self._stride == 0
            ]
        return True

    def batch(self, shard: str = "") -> SeriesBatch:
        """Freeze the buffer into one queue-shippable batch."""
        points = self._points
        if shard:
            points = [
                SeriesPoint(**{**p.to_dict(), "shard": shard}) for p in points
            ]
        return SeriesBatch(shard=shard, points=tuple(points), stride=self._stride)
