#!/usr/bin/env python3
"""Temporal CPU sharing: Method 1 vs Method 2 (paper Section 7.2).

When functions temporally share cores, context switching inflates
``T_private`` and the congestion seen by each invocation grows.  The paper
offers two ways to keep Litmus accurate:

* Method 1 keeps the dedicated-core tables and calibrates the probe for the
  switching overhead (cheap, but undershoots the ideal discount), and
* Method 2 rebuilds the tables inside the shared environment (more offline
  work, nearly ideal accuracy).

This example evaluates both on a moderately sized sharing environment and
prints the switching-overhead curve they rely on (paper Figure 14).

Run with:  python examples/temporal_sharing_study.py
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.core.sharing import measure_switching_curve
from repro.experiments.config import PricingMethod, sharing_160
from repro.experiments.harness import registry_for, run_price_evaluation


def main() -> None:
    # A scaled-down version of the paper's 160-function setup: 60 functions
    # sharing 12 cores (5 per core) so the example finishes quickly.
    def config_for(method: PricingMethod):
        from repro.core.calibration import CalibrationScenario

        scenario = (
            CalibrationScenario.shared(function_thread_count=5, functions_per_thread=5)
            if method is PricingMethod.METHOD2
            else CalibrationScenario.dedicated(function_thread_count=12)
        )
        return sharing_160(
            method,
            name=f"example-sharing-{method.value}",
            total_functions=60,
            eval_physical_cores=12,
            functions_per_thread=5,
            repetitions=1,
            registry_scale=0.3,
            calibration_levels=(4, 10, 16),
            calibration_scenario=scenario,
        )

    print("measuring the switching-overhead curve (paper Figure 14) ...")
    curve = measure_switching_curve(
        sharing_160(PricingMethod.METHOD1).machine,
        counts=(1, 2, 5, 10, 20),
        registry=registry_for(config_for(PricingMethod.METHOD1)),
    )
    print(format_table(
        [
            {"functions_per_core": p.functions_per_thread, "t_private_inflation": p.t_private_inflation}
            for p in curve
        ],
        columns=("functions_per_core", "t_private_inflation"),
        float_format="{:.4f}",
    ))

    results = {}
    for method in (PricingMethod.METHOD1, PricingMethod.METHOD2):
        print(f"\nevaluating {method.value} (calibration + 60-function evaluation) ...")
        results[method] = run_price_evaluation(config_for(method))

    print("\naverage discounts, normalized to the commercial price:")
    for method, result in results.items():
        print(
            f"  {method.value:8s} litmus {result.average_litmus_discount:6.2%}"
            f"   ideal {result.average_ideal_discount:6.2%}"
            f"   gap {result.discount_gap:+6.2%}"
        )
    method1_gap = abs(results[PricingMethod.METHOD1].discount_gap)
    method2_gap = abs(results[PricingMethod.METHOD2].discount_gap)
    better = "Method 2" if method2_gap <= method1_gap else "Method 1"
    print(f"\n{better} tracks the ideal discount more closely in this run, "
          "matching the paper's conclusion that rebuilding the tables under "
          "sharing (Method 2) is worth the extra offline work.")


if __name__ == "__main__":
    main()
