#!/usr/bin/env python3
"""Provider workflow: build the Litmus tables and inspect the fitted models.

A service provider deploying Litmus pricing runs this kind of study once per
machine configuration:

1. sweep CT-Gen and MB-Gen across stress levels while measuring the runtime
   startup probes (congestion table) and the reference functions
   (performance table),
2. fit the per-language regression models from probe slowdowns to reference
   slowdowns and check their quality (the paper's Figure 9 reports R^2
   between 0.84 and 0.99),
3. inspect the logarithmic L3-miss interpolation that blends the two
   generators' discount predictions (Figure 10).

Run with:  python examples/provider_calibration.py
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.core import CalibrationScenario, Calibrator, CongestionEstimator
from repro.core.litmus_test import LitmusObservation
from repro.hardware import CASCADE_LAKE_5218
from repro.workloads import default_registry
from repro.workloads.runtimes import Language
from repro.workloads.traffic import GeneratorKind


def main() -> None:
    machine = CASCADE_LAKE_5218
    registry = default_registry().scaled(0.3)

    print("sweeping CT-Gen and MB-Gen stress levels (this is the expensive, "
          "offline part a provider runs once per machine) ...\n")
    calibration = Calibrator(
        machine,
        registry,
        CalibrationScenario.dedicated(),
        stress_levels=(4, 8, 12, 16),
    ).calibrate()

    print(format_table(
        calibration.congestion_table.rows(),
        columns=(
            "generator", "stress_level", "language",
            "startup_private_slowdown", "startup_shared_slowdown", "machine_l3_misses",
        ),
        title="Congestion table (startup probes)",
        float_format="{:.3f}",
    ))
    print()
    print(format_table(
        calibration.performance_table.rows(),
        columns=(
            "generator", "stress_level",
            "reference_private_slowdown", "reference_shared_slowdown",
            "reference_total_slowdown",
        ),
        title="Performance table (reference functions)",
        float_format="{:.3f}",
    ))

    estimator = CongestionEstimator(calibration)
    print("\nregression quality (R^2) of the fitted models:")
    for key, value in sorted(estimator.regression_quality().items()):
        print(f"  {key:28s} {value:6.3f}")

    # Demonstrate the Figure-10 style interpolation for a Python probe that
    # saw a moderate slowdown but very different L3-miss counts.
    entry = calibration.congestion_table.get(GeneratorKind.MB, 8, Language.PYTHON)
    print("\ndiscounts for one probe reading at different machine L3-miss counts:")
    for l3 in (entry.machine_l3_misses / 20, entry.machine_l3_misses / 4, entry.machine_l3_misses):
        observation = LitmusObservation(
            function="demo",
            language=Language.PYTHON,
            private_slowdown=entry.private_slowdown,
            shared_slowdown=entry.shared_slowdown,
            total_slowdown=entry.total_slowdown,
            machine_l3_misses=l3,
            startup_wall_seconds=0.0,
        )
        estimate = estimator.estimate(observation)
        print(
            f"  L3 misses {l3:12,.0f}  ->  MB-likeness {estimate.mb_weight:4.2f}, "
            f"total discount {1 - 1 / estimate.total_slowdown:6.2%}"
        )


if __name__ == "__main__":
    main()
