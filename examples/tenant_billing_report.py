#!/usr/bin/env python3
"""Tenant billing report: what a monthly invoice looks like under Litmus.

The scenario the paper's introduction motivates: tenants deploy ordinary
functions on a crowded multi-tenant machine; when the machine is congested
their functions run longer and — under commercial pay-as-you-go pricing —
cost *more*.  This example runs the 14 test functions in a 26-co-runner
environment and prints, per function, the commercial charge, the Litmus
charge, the ideal charge and the resulting refund.

Run with:  python examples/tenant_billing_report.py
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.experiments.config import one_per_core
from repro.experiments.harness import price_evaluation_cached

#: Nominal price of one GB-second, used only to render dollar-like figures.
RATE_DOLLARS_PER_GB_SECOND = 0.0000166667  # AWS Lambda's published rate
#: Pretend each function is invoked this many times over the billing period.
INVOCATIONS_PER_MONTH = 2_000_000


def main() -> None:
    config = one_per_core(name="billing-report", repetitions=2)
    print(
        f"pricing {config.total_functions} co-running functions on "
        f"{config.machine.name} ({config.co_runners} co-runners per invocation) ...\n"
    )
    result = price_evaluation_cached(config)

    rows = []
    total_commercial = 0.0
    total_litmus = 0.0
    total_ideal = 0.0
    for row in result.rows:
        # Normalized prices are relative to the commercial charge; scale them
        # by a nominal per-invocation commercial cost to make the report read
        # like an invoice.  The absolute scale is arbitrary, the ratios are not.
        commercial = 1.0
        litmus = row.litmus_normalized_price
        ideal = row.ideal_normalized_price
        total_commercial += commercial
        total_litmus += litmus
        total_ideal += ideal
        rows.append(
            {
                "function": row.function,
                "commercial": commercial,
                "litmus": litmus,
                "ideal": ideal,
                "refund_pct": row.litmus_discount * 100.0,
                "ideal_refund_pct": row.ideal_discount * 100.0,
            }
        )
    print(format_table(
        rows,
        columns=("function", "commercial", "litmus", "ideal", "refund_pct", "ideal_refund_pct"),
        title="Per-invocation prices, normalized to the commercial charge",
        float_format="{:.3f}",
    ))

    litmus_saving = 1.0 - total_litmus / total_commercial
    ideal_saving = 1.0 - total_ideal / total_commercial
    print(f"\nfleet-wide refund under Litmus pricing : {litmus_saving:6.2%}")
    print(f"fleet-wide refund under ideal pricing  : {ideal_saving:6.2%}")
    print(f"gap between Litmus and ideal           : {abs(litmus_saving - ideal_saving):6.2%}")

    # Make it concrete with a nominal per-month volume.
    avg_gb_seconds = 0.05  # a typical 256 MB x 200 ms invocation
    monthly_commercial = (
        RATE_DOLLARS_PER_GB_SECOND * avg_gb_seconds * INVOCATIONS_PER_MONTH * len(result.rows)
    )
    print(
        f"\nfor a tenant fleet of {len(result.rows)} functions x "
        f"{INVOCATIONS_PER_MONTH:,} invocations/month "
        f"(~${monthly_commercial:,.2f} commercial):"
    )
    print(f"  Litmus refund : ${monthly_commercial * litmus_saving:,.2f}")
    print(f"  ideal refund  : ${monthly_commercial * ideal_saving:,.2f}")


if __name__ == "__main__":
    main()
