#!/usr/bin/env python3
"""Tenant billing report: what a monthly invoice looks like under Litmus.

The scenario the paper's introduction motivates: tenants deploy ordinary
functions on a crowded multi-tenant machine; when the machine is congested
their functions run longer and — under commercial pay-as-you-go pricing —
cost *more*.  This example runs the 14 test functions in a 26-co-runner
environment and prints, per function, the commercial charge, the Litmus
charge, the ideal charge and the resulting refund.

It then switches from the batch evaluation to the streaming billing
service (:mod:`repro.serve`): the same fleet mechanics replayed chunk by
chunk, with per-tenant metering records published as the trace is
ingested — how a provider would actually invoice a live fleet.

Run with:  python examples/tenant_billing_report.py
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.reporting import format_table
from repro.experiments.config import one_per_core
from repro.experiments.harness import price_evaluation_cached

#: Nominal price of one GB-second, used only to render dollar-like figures.
RATE_DOLLARS_PER_GB_SECOND = 0.0000166667  # AWS Lambda's published rate
#: Pretend each function is invoked this many times over the billing period.
INVOCATIONS_PER_MONTH = 2_000_000


def invoice_rows(result) -> Tuple[List[Dict[str, object]], Dict[str, float]]:
    """Per-function invoice lines plus fleet-wide totals.

    Normalized prices are relative to the commercial charge; scaling them
    by a nominal per-invocation commercial cost makes the report read like
    an invoice.  The absolute scale is arbitrary, the ratios are not.
    """
    rows: List[Dict[str, object]] = []
    totals = {"commercial": 0.0, "litmus": 0.0, "ideal": 0.0}
    for row in result.rows:
        totals["commercial"] += 1.0
        totals["litmus"] += row.litmus_normalized_price
        totals["ideal"] += row.ideal_normalized_price
        rows.append(
            {
                "function": row.function,
                "commercial": 1.0,
                "litmus": row.litmus_normalized_price,
                "ideal": row.ideal_normalized_price,
                "refund_pct": row.litmus_discount * 100.0,
                "ideal_refund_pct": row.ideal_discount * 100.0,
            }
        )
    return rows, totals


def streamed_usage(
    preset: str = "smoke", chunk_epochs: int = 50
) -> Tuple[List[Dict[str, object]], object]:
    """Replay ``preset`` through the streaming service, invoicing as we go.

    Returns per-(scenario, function) usage rows aggregated purely from the
    :class:`~repro.serve.BillingRecord` deltas the publish stage receives —
    the streamed ledger, never the batch result — plus the pipeline's
    :class:`~repro.serve.StreamSummary`.
    """
    from repro.scenarios import chunk_plan, compile_spec, load_spec_or_preset
    from repro.serve import StreamPipeline, StreamReplay

    replay = StreamReplay(compile_spec(load_spec_or_preset(preset)))
    usage: Dict[Tuple[str, str], List[float]] = {}

    def publish(chunk_result) -> None:
        for record in chunk_result.records:
            entry = usage.setdefault((record.scenario, record.function), [0.0, 0.0, 0])
            entry[0] += record.true_gb_seconds
            entry[1] += record.billed_gb_seconds
            entry[2] += 1

    summary = StreamPipeline(
        replay, chunk_plan(replay.epochs_total, chunk_epochs), publish=publish
    ).run()
    rows = [
        {
            "scenario": scenario,
            "function": function,
            "true_gb_s": true,
            "billed_gb_s": billed,
            "updates": updates,
        }
        for (scenario, function), (true, billed, updates) in sorted(usage.items())
    ]
    return rows, summary


def main() -> None:
    config = one_per_core(name="billing-report", repetitions=2)
    print(
        f"pricing {config.total_functions} co-running functions on "
        f"{config.machine.name} ({config.co_runners} co-runners per invocation) ...\n"
    )
    result = price_evaluation_cached(config)

    rows, totals = invoice_rows(result)
    print(format_table(
        rows,
        columns=("function", "commercial", "litmus", "ideal", "refund_pct", "ideal_refund_pct"),
        title="Per-invocation prices, normalized to the commercial charge",
        float_format="{:.3f}",
    ))

    litmus_saving = 1.0 - totals["litmus"] / totals["commercial"]
    ideal_saving = 1.0 - totals["ideal"] / totals["commercial"]
    print(f"\nfleet-wide refund under Litmus pricing : {litmus_saving:6.2%}")
    print(f"fleet-wide refund under ideal pricing  : {ideal_saving:6.2%}")
    print(f"gap between Litmus and ideal           : {abs(litmus_saving - ideal_saving):6.2%}")

    # Make it concrete with a nominal per-month volume.
    avg_gb_seconds = 0.05  # a typical 256 MB x 200 ms invocation
    monthly_commercial = (
        RATE_DOLLARS_PER_GB_SECOND * avg_gb_seconds * INVOCATIONS_PER_MONTH * len(result.rows)
    )
    print(
        f"\nfor a tenant fleet of {len(result.rows)} functions x "
        f"{INVOCATIONS_PER_MONTH:,} invocations/month "
        f"(~${monthly_commercial:,.2f} commercial):"
    )
    print(f"  Litmus refund : ${monthly_commercial * litmus_saving:,.2f}")
    print(f"  ideal refund  : ${monthly_commercial * ideal_saving:,.2f}")

    # The live-service version of the same idea: meter and bill tenants
    # incrementally while the trace streams through repro.serve.
    print("\nstreaming the 'smoke' fleet through the billing service ...\n")
    usage_rows, summary = streamed_usage()
    print(format_table(
        usage_rows,
        columns=("scenario", "function", "true_gb_s", "billed_gb_s", "updates"),
        title="Per-tenant metered usage, aggregated from streamed billing records",
        float_format="{:.6f}",
    ))
    print(
        f"\nstreamed {summary.chunks} chunks / {summary.epochs} epochs, "
        f"{summary.records} billing records, {summary.completions} completions"
    )


if __name__ == "__main__":
    main()
