#!/usr/bin/env python3
"""Quickstart: price one serverless function with Litmus.

The walk-through mirrors the paper's pipeline end to end on a small setup:

1. describe the machine and pick a tenant function from the Table-1 registry,
2. calibrate the provider-side congestion/performance tables against the
   CT-Gen / MB-Gen traffic generators (a few stress levels are enough here),
3. run the tenant function in a congested environment,
4. price the invocation three ways — commercial (no discount), Litmus
   (probe + tables) and ideal (oracle) — and compare.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import (
    CalibrationScenario,
    Calibrator,
    CongestionEstimator,
    IdealPricing,
    LitmusPricingEngine,
)
from repro.hardware import CASCADE_LAKE_5218, CPU
from repro.platform import (
    ChurnManager,
    DedicatedCoreScheduler,
    SimulationEngine,
    SoloOracle,
)
from repro.workloads import WorkloadMixer, default_registry


def main() -> None:
    machine = CASCADE_LAKE_5218
    # Scale function bodies down so the whole example runs in a few seconds;
    # slowdowns and prices are ratios, so the conclusions are unchanged.
    registry = default_registry().scaled(0.3)
    tenant_function = registry.get("pager-py")
    print(f"machine: {machine.name} ({machine.cores} cores, {machine.l3.size_mb:.0f} MB L3)")
    print(f"tenant function: {tenant_function.abbreviation} ({tenant_function.name})\n")

    # ------------------------------------------------------------------ #
    # Step 1 (provider, offline): calibrate the tables.
    # ------------------------------------------------------------------ #
    print("calibrating congestion and performance tables ...")
    oracle = SoloOracle(machine)
    calibration = Calibrator(
        machine,
        registry,
        CalibrationScenario.dedicated(),
        stress_levels=(4, 10, 16),
        oracle=oracle,
    ).calibrate()
    estimator = CongestionEstimator(calibration)
    pricer = LitmusPricingEngine(estimator)
    print(f"  congestion table entries: {len(calibration.congestion_table)}")
    print(f"  performance table entries: {len(calibration.performance_table)}\n")

    # ------------------------------------------------------------------ #
    # Step 2 (platform, online): run the function among 26 co-runners.
    # ------------------------------------------------------------------ #
    print("running the tenant function with 26 co-running functions ...")
    engine = SimulationEngine(CPU(machine), DedicatedCoreScheduler())
    invocation = engine.submit(tenant_function, thread_id=0, tags={"role": "tenant"})
    churn = ChurnManager(
        WorkloadMixer(registry.all(), seed=7), target_count=26, thread_ids=list(range(1, 27))
    )
    churn.attach(engine)
    engine.run_until(lambda eng: invocation.is_completed, max_seconds=120.0)

    # ------------------------------------------------------------------ #
    # Step 3: price the invocation.
    # ------------------------------------------------------------------ #
    quote = pricer.quote(invocation)
    solo = oracle.profile(tenant_function)
    ideal_price = IdealPricing().price(tenant_function.memory_gb, solo)

    print("\nLitmus probe reading (startup window):")
    print(f"  private slowdown : {quote.observation.private_slowdown:6.3f}x")
    print(f"  shared slowdown  : {quote.observation.shared_slowdown:6.3f}x")
    print(f"  machine L3 misses: {quote.observation.machine_l3_misses:,.0f}")
    print(f"  MB-Gen likeness  : {quote.estimate.mb_weight:5.2f} (0 = CT-like, 1 = MB-like)")

    commercial = quote.commercial.total
    print("\nprices (GB x seconds, lower is cheaper for the tenant):")
    print(f"  commercial (no discount): {commercial:10.6f}")
    print(f"  Litmus                  : {quote.litmus.total:10.6f}"
          f"   (discount {quote.discount:6.2%})")
    print(f"  ideal (oracle)          : {ideal_price.total:10.6f}"
          f"   (discount {1 - ideal_price.total / commercial:6.2%})")
    print(
        "\nLitmus recovered the congestion discount without profiling the "
        "tenant function - only its startup probe and the provider's tables."
    )


if __name__ == "__main__":
    main()
