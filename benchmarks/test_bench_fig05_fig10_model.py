"""Benchmarks regenerating the calibration/model figures (Figures 5-10, 14)."""

from repro.experiments import (
    fig05_tables,
    fig07_probe_timeline,
    fig08_reference_mbgen,
    fig09_regression,
    fig10_interpolation,
    fig14_switching,
)


def test_bench_fig05_tables(regenerate):
    result = regenerate(fig05_tables.run)
    assert result.summary["congestion_entries"] > 0
    assert result.summary["max_reference_total_slowdown"] > 1.0


def test_bench_fig07_probe_timeline(regenerate):
    result = regenerate(fig07_probe_timeline.run)
    assert result.summary["probes"] >= 4


def test_bench_fig08_reference_mbgen(regenerate):
    result = regenerate(fig08_reference_mbgen.run)
    assert result.summary["gmean_shared_slowdown"] > result.summary["gmean_private_slowdown"]


def test_bench_fig09_regression(regenerate):
    result = regenerate(fig09_regression.run)
    r2 = [value for key, value in result.summary.items() if "_r2_" in key]
    # Paper Figure 9 reports R^2 between 0.84 and 0.99.
    assert all(value > 0.6 for value in r2)


def test_bench_fig10_interpolation(regenerate):
    result = regenerate(fig10_interpolation.run)
    assert result.summary["mb_expected_l3_misses"] > result.summary["ct_expected_l3_misses"]
    assert result.summary["max_discount"] >= result.summary["min_discount"]


def test_bench_fig14_switching_overhead(regenerate):
    result = regenerate(fig14_switching.run)
    # Paper Figure 14: saturates at roughly +2.5 %.
    assert 1.01 < result.summary["inflation_at_saturation"] < 1.06
