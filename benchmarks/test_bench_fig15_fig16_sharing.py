"""Benchmarks regenerating the temporal-sharing pricing figures (15-16).

Paper reference points: with 160 co-running functions Method 1 discounts
14.5 % against an ideal 17.4 % (undershooting by 2.9 %), while Method 2 —
tables rebuilt under sharing — lands within 0.2 % of the ideal discount.
The reproduction checks the same ordering: Method 2's gap is no worse than
Method 1's, and both track the ideal discount.
"""

from repro.experiments import fig15_method1, fig16_method2


def test_bench_fig15_method1(regenerate):
    result = regenerate(fig15_method1.run)
    assert result.summary["average_ideal_discount"] > 0.05
    assert abs(result.summary["discount_gap"]) < 0.06


def test_bench_fig16_method2(regenerate):
    result = regenerate(fig16_method2.run)
    assert result.summary["average_ideal_discount"] > 0.05
    assert abs(result.summary["discount_gap"]) < 0.04


def test_bench_method2_no_worse_than_method1(regenerate):
    method2 = regenerate(fig16_method2.run)
    method1 = fig15_method1.run()
    assert abs(method2.summary["discount_gap"]) <= abs(method1.summary["discount_gap"]) + 0.01
