"""Benchmark harness helpers.

Every benchmark regenerates one of the paper's tables or figures via the
corresponding ``repro.experiments`` module, records the wall-clock cost of
doing so with pytest-benchmark, prints the regenerated rows, and writes them
to ``results/<figure>.txt`` so EXPERIMENTS.md can reference the exact output.

Simulation results are deterministic, so each figure is generated exactly
once (``rounds=1``) — the interesting output is the figure itself, not
timing statistics over repeated runs.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.harness import FigureResult

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def regenerate(benchmark, results_dir):
    """Run a figure module once under pytest-benchmark and persist its output."""

    def _regenerate(run_callable, *args, **kwargs) -> FigureResult:
        result = benchmark.pedantic(
            run_callable, args=args, kwargs=kwargs, rounds=1, iterations=1
        )
        rendered = result.render()
        output_path = results_dir / f"{result.name}.txt"
        output_path.write_text(rendered + "\n", encoding="utf-8")
        print(f"\n{rendered}\n[written to {output_path}]")
        return result

    return _regenerate
