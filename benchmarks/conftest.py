"""Benchmark harness helpers.

Every benchmark regenerates one of the paper's tables or figures via the
corresponding ``repro.experiments`` module, records the wall-clock cost of
doing so with pytest-benchmark, prints the regenerated rows, and writes them
to ``results/<figure>.txt`` so EXPERIMENTS.md can reference the exact output.

Simulation results are deterministic, so each figure is generated exactly
once (``rounds=1``) — the interesting output is the figure itself, not
timing statistics over repeated runs.

Every test in this directory is auto-marked ``figure`` (the CI unit tier
deselects them), and the session appends its per-figure wall-clock to the
``BENCH_engine.json`` trajectory so engine-performance changes stay visible
across commits.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict

import pytest

from repro import benchlog
from repro.experiments.harness import FigureResult

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

_figure_seconds: Dict[str, float] = {}


def pytest_collection_modifyitems(items):
    benchmarks_dir = Path(__file__).resolve().parent
    for item in items:
        if benchmarks_dir in Path(str(item.fspath)).parents:
            item.add_marker(pytest.mark.figure)


def pytest_sessionfinish(session, exitstatus):
    if _figure_seconds:
        benchlog.append_run(
            _figure_seconds,
            source="benchmarks",
            path=benchlog.default_path(RESULTS_DIR),
        )


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def regenerate(benchmark, results_dir):
    """Run a figure module once under pytest-benchmark and persist its output."""

    def _regenerate(run_callable, *args, **kwargs) -> FigureResult:
        start = time.perf_counter()
        result = benchmark.pedantic(
            run_callable, args=args, kwargs=kwargs, rounds=1, iterations=1
        )
        _figure_seconds[result.name] = time.perf_counter() - start
        rendered = result.render()
        output_path = results_dir / f"{result.name}.txt"
        output_path.write_text(rendered + "\n", encoding="utf-8")
        print(f"\n{rendered}\n[written to {output_path}]")
        return result

    return _regenerate
