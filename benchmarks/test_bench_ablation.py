"""Benchmarks for the design-choice ablations called out in DESIGN.md."""

from repro.experiments.ablation import (
    run_interpolation_ablation,
    run_rate_split_ablation,
    run_reference_count_ablation,
)


def test_bench_ablation_rate_split(regenerate):
    result = regenerate(run_rate_split_ablation)
    assert result.summary["split_rate_abs_error_geomean"] > 0.0
    assert result.summary["single_rate_abs_error_geomean"] > 0.0


def test_bench_ablation_interpolation(regenerate):
    result = regenerate(run_interpolation_ablation)
    assert result.summary["log_interp_abs_error_geomean"] > 0.0


def test_bench_ablation_reference_count(regenerate):
    result = regenerate(run_reference_count_ablation)
    gaps = [abs(value) for value in result.summary.values()]
    assert all(gap < 0.15 for gap in gaps)
