"""Benchmarks regenerating the one-function-per-core pricing figures (11-13).

Paper reference points: the average Litmus discount is 10.7 % against an
ideal 10.3 % (Figure 11), per-function absolute errors reach 0.072 with an
absolute geometric mean of 0.023 (Figure 12).  The reproduction checks the
shape: Litmus tracks the ideal discount within a few percent and per-function
errors stay bounded.
"""

from repro.experiments import fig11_price_26, fig12_price_errors, fig13_discount_lines


def test_bench_fig11_prices_with_26_corunners(regenerate):
    result = regenerate(fig11_price_26.run)
    assert 0.0 < result.summary["average_ideal_discount"] < 0.35
    assert 0.0 < result.summary["average_litmus_discount"] < 0.35
    assert abs(result.summary["discount_gap"]) < 0.05


def test_bench_fig12_price_errors(regenerate):
    result = regenerate(fig12_price_errors.run)
    assert result.summary["abs_error_geomean"] < 0.06
    assert result.summary["max_abs_error"] < 0.12


def test_bench_fig13_discount_lines(regenerate):
    result = regenerate(fig13_discount_lines.run)
    # Shared resources get deeper discounts than private resources.
    assert result.summary["gmean_shared_rate"] < result.summary["gmean_private_rate"]
