"""Benchmarks regenerating the sensitivity-study figures (17-21).

Paper reference points (all Method 2, normalized to commercial prices):

* Figure 17 — 320 memory-intensive co-runners: 20.0 % discount vs ideal
  21.5 % (1.5 % gap).
* Figure 18 — unfixed CPU frequency: 16.8 % vs ideal 17.3 % (0.5 % gap).
* Figure 19 — Ice Lake Xeon Silver 4314: tenants pay 82.5 % of commercial,
  0.7 % from ideal.
* Figure 20 — 240 co-runners with reused 10-per-core tables: 1.2 % gap.
* Figure 21 — SMT enabled: ideal price 47.3 % of commercial, Litmus within
  1.9 %.

The reproduction checks the shapes: every configuration keeps the Litmus
discount within a few percent of the ideal one, heavier sharing yields
larger discounts, and SMT yields by far the largest.
"""

from repro.experiments import (
    fig11_price_26,
    fig16_method2,
    fig17_heavy,
    fig18_frequency,
    fig19_icelake,
    fig20_reused_tables,
    fig21_smt,
)


def test_bench_fig17_heavy_congestion(regenerate):
    result = regenerate(fig17_heavy.run)
    assert abs(result.summary["discount_gap"]) < 0.05
    # Heavier, memory-intensive co-location never shrinks the ideal discount
    # below the regular 160-function setup.
    baseline = fig16_method2.run()
    assert (
        result.summary["average_ideal_discount"]
        >= baseline.summary["average_ideal_discount"] - 0.02
    )


def test_bench_fig18_unfixed_frequency(regenerate):
    result = regenerate(fig18_frequency.run)
    assert abs(result.summary["discount_gap"]) < 0.05
    assert result.summary["average_litmus_discount"] > 0.05


def test_bench_fig19_ice_lake(regenerate):
    result = regenerate(fig19_icelake.run)
    assert abs(result.summary["discount_gap"]) < 0.05
    assert 0.0 < result.summary["average_litmus_discount"] < 0.5


def test_bench_fig20_reused_tables(regenerate):
    result = regenerate(fig20_reused_tables.run)
    # Reusing the 10-per-core tables at 15 per core costs little accuracy.
    assert abs(result.summary["discount_gap"]) < 0.05


def test_bench_fig21_smt(regenerate):
    result = regenerate(fig21_smt.run)
    assert abs(result.summary["discount_gap"]) < 0.06
    # SMT extends sharing into the core: discounts dwarf every other setup.
    dedicated = fig11_price_26.run()
    assert (
        result.summary["average_ideal_discount"]
        > dedicated.summary["average_ideal_discount"] * 1.5
    )
