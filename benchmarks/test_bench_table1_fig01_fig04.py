"""Benchmarks regenerating Table 1 and the workload-characterization figures
that need no co-running environment (Figures 1, 4, 6)."""

from repro.experiments import fig01_traffic, fig04_distribution, fig06_startup_ipc, table1


def test_bench_table1(regenerate):
    result = regenerate(table1.run)
    assert result.summary["functions"] == 27.0
    assert result.summary["reference_functions"] == 13.0


def test_bench_fig01_traffic_generators(regenerate):
    result = regenerate(fig01_traffic.run)
    # Figure 1 shape: CT-Gen produces more L2 misses, MB-Gen vastly more L3
    # misses; both grow with thread count.
    assert result.summary["ct_gen_max_normalized_l2"] > result.summary["mb_gen_max_normalized_l2"]
    assert result.summary["l3_separation_ratio"] > 5.0


def test_bench_fig04_time_distribution(regenerate):
    result = regenerate(fig04_distribution.run)
    assert result.summary["max_private_fraction"] > 0.9
    assert 0.0 < result.summary["mean_shared_fraction"] < 0.5


def test_bench_fig06_startup_ipc(regenerate):
    result = regenerate(fig06_startup_ipc.run)
    assert result.summary["nodejs_startup_ms"] > result.summary["python_startup_ms"]
    assert result.summary["python_startup_ms"] > result.summary["go_startup_ms"]
