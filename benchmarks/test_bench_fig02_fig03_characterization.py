"""Benchmarks regenerating the 26-co-runner characterization (Figures 2-3)."""

from repro.experiments import fig02_corun_slowdown, fig03_time_split


def test_bench_fig02_corun_slowdown(regenerate):
    result = regenerate(fig02_corun_slowdown.run)
    # Paper: ~11.5 % gmean slowdown, up to ~35 %.
    assert 1.03 < result.summary["gmean_slowdown"] < 1.35
    assert result.summary["max_slowdown"] < 1.8


def test_bench_fig03_time_split(regenerate):
    result = regenerate(fig03_time_split.run)
    # Paper: T_shared +181 % on average (max 4.9x), T_private only ~+4 %.
    assert result.summary["gmean_shared_slowdown"] > 1.6
    assert result.summary["gmean_private_slowdown"] < 1.1
    assert result.summary["max_shared_slowdown"] < 6.0
